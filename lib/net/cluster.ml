(* The simulated cluster (paper, Sections 2 and 5).

   A cluster is a set of nodes, each running an MCC migration daemon
   (Migrate.Server), connected by the simulated network, sharing reliable
   storage (the "NFS mount").  Processes are placed on nodes, scheduled
   round-robin with a step quantum, and interact through the Mpi message
   layer.  The cluster implements:

   - the three migration protocols end-to-end (pack on the source, bytes
     across the network, verify/recompile/resume on the target daemon);
   - node failure injection: resident processes die, survivors that poll
     the dead ranks observe MSG_ROLL, and speculative messages' consumers
     are rolled back through the dependency cascade;
   - resurrection: a checkpoint file is read back from shared storage and
     the process resumes on a chosen node under its old rank (Figure 2's
     recovery path).

   Simulated time: every process's work is charged in architecture cycles;
   a round advances the clock by the busiest node's share, so nodes run in
   parallel while processes on one node serialize.  Checkpoint writes and
   migrations charge their full cost to the process that performs them. *)

open Runtime
open Vm

type engine = Interp_engine | Emu_engine of Emulator.t

type entry = {
  proc : Process.t;
  mutable engine : engine;
  mutable node_id : int;
  mailbox : Mpi.mailbox;
  mutable rank : int option;
  mutable start_at : float; (* not schedulable before this time *)
  (* the (src rank, tag) the process last polled unsuccessfully: the
     scheduler only wakes it for a matching delivery (or a roll notice
     from that source), so unrelated traffic cannot spin-livelock a
     parked receiver *)
  mutable parked_on : (int * int) option;
}

type node = {
  node_id : int;
  node_name : string;
  node_arch : Arch.t;
  mutable alive : bool;
  daemon : Migrate.Server.t;
  mutable busy_seconds : float; (* time spent executing *)
  (* the node's local simulated clock (busy + idle waiting).  Nodes
     advance independently — a conservative discrete-event simulation —
     so out-of-phase processes (e.g. a freshly resurrected rank) overlap
     with their peers instead of serialising against a global clock. *)
  mutable clock : float;
}

type migration_record = {
  mr_kind : [ `Migrate | `Suspend | `Checkpoint ];
  mr_pid : int;
  mr_bytes : int;
  mr_pack_s : float;
  mr_transfer_s : float;
  mr_compile_s : float; (* link-only on a recompilation-cache hit *)
  mr_cache_hit : bool;
  mr_ok : bool;
}

type t = {
  nodes : node array;
  net : Simnet.t;
  storage : Storage.t;
  mutable entries : entry list; (* newest first *)
  by_pid : (int, entry) Hashtbl.t;
  ranks : (int, int) Hashtbl.t; (* rank -> pid *)
  (* rank-level mailboxes: messages are addressed to RANKS, and the queue
     survives the death of the process currently holding the rank (a
     resurrected or migrated successor inherits it, like DEMOS/MP's
     forwarding stubs).  Unranked processes get private mailboxes. *)
  rank_mailboxes : (int, Mpi.mailbox) Hashtbl.t;
  (* (sender pid, sender level uid) -> dependent (receiver pid, receiver uid) *)
  deps : (int * int, (int * int) list ref) Hashtbl.t;
  mutable next_pid : int;
  rng : Random.State.t;
  trusted : bool;
  quantum : int;
  obj_store : (int, Bytes.t) Hashtbl.t; (* Figure 1's account objects *)
  (* speculative object writes: (writer pid, level uid) -> saved old
     contents, newest first.  The object store participates in the
     writer's speculation: rollback restores these, commit folds them
     into the parent level (exactly the heap's checkpoint-record
     discipline, applied to external state). *)
  obj_undo : (int * int, (int * Bytes.t option) list ref) Hashtbl.t;
  (* MojaveFS-lite: per-speculation-level undo log for shared-store files
     (path -> previous contents), mirroring the object store's *)
  fs_undo : (int * int, (string * string option) list ref) Hashtbl.t;
  mutable obj_fail_prob : float;
  mutable migrations : migration_record list;
  mutable events : string list; (* newest first, for diagnostics *)
  (* observability: the typed event trace and the metrics registry.
     Events carry SIMULATED time; counters aggregate what the trace
     itemises *)
  tracer : Obs.Trace.t;
  metrics : Obs.Metrics.t;
  c_rounds : Obs.Metrics.counter;
  c_quanta : Obs.Metrics.counter;
  c_migrations_ok : Obs.Metrics.counter;
  c_migrations_failed : Obs.Metrics.counter;
  c_migration_cache_hits : Obs.Metrics.counter;
  c_checkpoints : Obs.Metrics.counter;
  c_node_failures : Obs.Metrics.counter;
  c_resurrections : Obs.Metrics.counter;
  h_migrate_bytes : Obs.Metrics.histogram;
  h_pack_s : Obs.Metrics.histogram;
  h_transfer_s : Obs.Metrics.histogram;
  h_compile_s : Obs.Metrics.histogram;
  (* time base of the quantum currently executing (single-threaded):
     lets extern handlers compute the running process's precise local
     time even mid-quantum *)
  mutable cur_base : float;
  mutable cur_cycles0 : int;
  mutable cur_pid : int; (* pid of the process in that quantum, or -1 *)
}

let msg_none = Mpi.msg_none
let msg_roll = Mpi.msg_roll

(* ------------------------------------------------------------------ *)
(* Externs available to cluster processes                              *)
(* ------------------------------------------------------------------ *)

let extern_signatures_list : (string * (Fir.Types.ty list * Fir.Types.ty)) list
    =
  let open Fir.Types in
  [
    "msg_send", ([ Tint; Tint; Tptr Tfloat; Tint ], Tint);
    "msg_try_recv", ([ Tint; Tint; Tptr Tfloat; Tint ], Tint);
    "msg_send_int", ([ Tint; Tint; Tptr Tint; Tint ], Tint);
    "msg_try_recv_int", ([ Tint; Tint; Tptr Tint; Tint ], Tint);
    "rank", ([], Tint);
    "sim_now_us", ([], Tint);
    "obj_read", ([ Tint; Tptr Tint; Tint ], Tint);
    "obj_write", ([ Tint; Tptr Tint; Tint ], Tint);
    (* MojaveFS-lite (the paper's "speculative I/O" future work,
       Section 7): byte files on the shared store whose writes join the
       writer's speculation, so "normal file I/O operations" are usable
       inside a speculation and roll back with it *)
    "fs_write", ([ Traw; Tptr Tint; Tint ], Tint);
    "fs_read", ([ Traw; Tptr Tint; Tint ], Tint);
    "fs_size", ([ Traw ], Tint);
  ]

let extern_signatures : Fir.Typecheck.extern_lookup =
 fun name ->
  match List.assoc_opt name extern_signatures_list with
  | Some s -> Some s
  | None -> Extern.signature_lookup [] name

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(node_count = 4) ?(arches = [| Arch.cisc32 |]) ?(trusted = false)
    ?(quantum = 64) ?(seed = 1) ?(code_cache = 16) ?net ?trace_capacity ()
    =
  let net = match net with Some n -> n | None -> Simnet.create () in
  let nodes =
    Array.init node_count (fun i ->
        let arch = arches.(i mod Array.length arches) in
        (* each node's daemon owns its own bounded recompilation cache
           (code_cache <= 0 disables caching cluster-wide) *)
        let cache =
          if code_cache > 0 then
            Some (Migrate.Codecache.create ~capacity:code_cache ())
          else None
        in
        {
          node_id = i;
          node_name = Printf.sprintf "node%d" i;
          node_arch = arch;
          alive = true;
          daemon =
            Migrate.Server.create ~trusted
              ~extern_signatures arch ~first_pid:0 ?cache;
          busy_seconds = 0.0;
          clock = 0.0;
        })
  in
  let metrics = Obs.Metrics.create () in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let c_rounds = Obs.Metrics.counter metrics "sched.rounds" in
  let c_quanta = Obs.Metrics.counter metrics "sched.quanta" in
  let c_migrations_ok =
    Obs.Metrics.counter metrics "cluster.migrations_ok"
  in
  let c_migrations_failed =
    Obs.Metrics.counter metrics "cluster.migrations_failed"
  in
  let c_migration_cache_hits =
    Obs.Metrics.counter metrics "cluster.migration_cache_hits"
  in
  let c_checkpoints = Obs.Metrics.counter metrics "cluster.checkpoints" in
  let c_node_failures =
    Obs.Metrics.counter metrics "cluster.node_failures"
  in
  let c_resurrections =
    Obs.Metrics.counter metrics "cluster.resurrections"
  in
  let h_migrate_bytes =
    Obs.Metrics.histogram metrics "cluster.migrate_bytes"
  in
  let h_pack_s = Obs.Metrics.histogram metrics "cluster.pack_seconds" in
  let h_transfer_s =
    Obs.Metrics.histogram metrics "cluster.transfer_seconds"
  in
  let h_compile_s =
    Obs.Metrics.histogram metrics "cluster.compile_seconds"
  in
  {
    nodes;
    net;
    storage = Storage.create net;
    entries = [];
    by_pid = Hashtbl.create 32;
    ranks = Hashtbl.create 32;
    rank_mailboxes = Hashtbl.create 32;
    deps = Hashtbl.create 32;
    next_pid = 1;
    rng = Random.State.make [| seed |];
    trusted;
    quantum;
    obj_store = Hashtbl.create 8;
    obj_undo = Hashtbl.create 8;
    fs_undo = Hashtbl.create 8;
    obj_fail_prob = 0.0;
    migrations = [];
    events = [];
    tracer = Obs.Trace.create ?capacity:trace_capacity ();
    metrics;
    c_rounds;
    c_quanta;
    c_migrations_ok;
    c_migrations_failed;
    c_migration_cache_hits;
    c_checkpoints;
    c_node_failures;
    c_resurrections;
    h_migrate_bytes;
    h_pack_s;
    h_transfer_s;
    h_compile_s;
    cur_base = 0.0;
    cur_cycles0 = 0;
    cur_pid = -1;
  }

let log t fmt =
  Printf.ksprintf
    (fun s ->
      t.events <-
        Printf.sprintf "[%10.6f] %s" (Simnet.now t.net) s :: t.events)
    fmt

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster.node: no node %d" id)
  else t.nodes.(id)

let node_by_name t name =
  Array.to_list t.nodes
  |> List.find_opt (fun n -> String.equal n.node_name name)

let entry_of_pid t pid = Hashtbl.find_opt t.by_pid pid

let entry_of_rank t rank =
  match Hashtbl.find_opt t.ranks rank with
  | Some pid -> entry_of_pid t pid
  | None -> None

(* cluster-wide time: the farthest local clock (completion time of the
   whole system when quiescent) *)
let now t =
  Array.fold_left (fun acc n -> max acc n.clock) (Simnet.now t.net) t.nodes

(* precise local time of the process currently executing a quantum *)
let effective_now t (proc : Process.t) =
  t.cur_base
  +. Arch.seconds proc.Process.arch (proc.Process.cycles - t.cur_cycles0)

let charge_seconds (proc : Process.t) s =
  proc.Process.cycles <-
    proc.Process.cycles
    + int_of_float (s *. float_of_int proc.Process.arch.Arch.clock_mhz *. 1e6)

(* Best available simulated time for an event attributed to [e]: the
   precise mid-quantum time when [e]'s process is the one currently
   executing, its node's local clock otherwise (cascaded rollbacks,
   host-initiated failure/recovery). *)
let entry_time t (e : entry) =
  if e.proc.Process.pid = t.cur_pid then effective_now t e.proc
  else (node t e.node_id).clock

let entry_rank (e : entry) = match e.rank with Some r -> r | None -> -1

let emit t ~time ?node ?pid ?rank kind =
  Obs.Trace.record t.tracer ~time ?node ?pid ?rank kind

let emit_entry t (e : entry) kind =
  Obs.Trace.record t.tracer ~time:(entry_time t e) ~node:e.node_id
    ~pid:e.proc.Process.pid ~rank:(entry_rank e) kind

(* ------------------------------------------------------------------ *)
(* Externs                                                             *)
(* ------------------------------------------------------------------ *)


(* Record that [receiver] consumed a message sent from inside [sender]'s
   speculation: the receiver joins that speculation. *)
let add_dependency t ~sender ~receiver =
  let deps =
    match Hashtbl.find_opt t.deps sender with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add t.deps sender l;
      l
  in
  if not (List.mem receiver !deps) then deps := receiver :: !deps

(* Roll a process back because a speculation it depends on failed.  If the
   joined level is gone (committed or already rolled back) fall back to the
   process's oldest open level; a receiver with no speculation to undo is
   unrecoverable and traps (it consumed state that never happened). *)
let rec force_rollback t ~pid ~uid ~code =
  match entry_of_pid t pid with
  | None -> ()
  | Some entry -> (
    match entry.proc.Process.status with
    | Process.Exited _ | Process.Trapped _ -> ()
    | Process.Running | Process.Migrating _ -> (
      let spec = entry.proc.Process.spec in
      let level =
        match Spec.Engine.level_of_unique spec uid with
        | Some l -> Some l
        | None -> if Spec.Engine.depth spec > 0 then Some 1 else None
      in
      match level with
      | None ->
        log t "pid %d: unrecoverable speculative dependency" pid;
        entry.proc.Process.status <-
          Process.Trapped "unrecoverable speculative dependency"
      | Some level ->
        (* if the process was parked at a migration point, cancel it *)
        (match entry.proc.Process.status with
        | Process.Migrating _ -> Process.migration_failed entry.proc
        | Process.Running | Process.Exited _ | Process.Trapped _ -> ());
        (* do_rollback fires the engine's on_rollback hook, which cascades
           to this process's own dependents transitively *)
        Process.do_rollback entry.proc ~level ~code;
        entry.proc.Process.waiting <- false;
        log t "pid %d: forced rollback to level %d" pid level))

(* Undo everything that depended on the given (now rolled back or dead)
   speculation levels of [sender_pid]: discard their unconsumed messages,
   then roll back their consumers. *)
and cascade t ~sender_pid ~uids ~code =
  (* undo the rolled-back levels' external object writes (newest level
     first, so the oldest saved contents win) *)
  List.iter
    (fun uid ->
      (match Hashtbl.find_opt t.obj_undo (sender_pid, uid) with
      | None -> ()
      | Some log ->
        Hashtbl.remove t.obj_undo (sender_pid, uid);
        List.iter
          (fun (obj, old) ->
            match old with
            | Some bytes -> Hashtbl.replace t.obj_store obj bytes
            | None -> Hashtbl.remove t.obj_store obj)
          (List.rev !log));
      match Hashtbl.find_opt t.fs_undo (sender_pid, uid) with
      | None -> ()
      | Some log ->
        Hashtbl.remove t.fs_undo (sender_pid, uid);
        List.iter
          (fun (path, old) ->
            match old with
            | Some data -> ignore (Storage.write t.storage path data)
            | None -> Storage.remove t.storage path)
          (List.rev !log))
    uids;
  List.iter
    (fun (e : entry) ->
      ignore (Mpi.discard_speculative e.mailbox ~uids ~sender_pid))
    t.entries;
  List.iter
    (fun uid ->
      match Hashtbl.find_opt t.deps (sender_pid, uid) with
      | None -> ()
      | Some dependents ->
        let ds = !dependents in
        Hashtbl.remove t.deps (sender_pid, uid);
        List.iter
          (fun (rpid, ruid) ->
            if rpid <> sender_pid then
              force_rollback t ~pid:rpid ~uid:ruid ~code)
          ds)
    uids

let cluster_extern t entry : Process.handler =
 fun proc name args ->
  let heap = proc.Process.heap in
  let read_cells ptr len =
    let idx, off = Vm.Interp.as_ptr ptr in
    Array.init len (fun k -> Heap.read heap idx (off + k))
  in
  let write_cells ptr payload n =
    let idx, off = Vm.Interp.as_ptr ptr in
    for k = 0 to n - 1 do
      Heap.write heap idx (off + k) payload.(k)
    done
  in
  match name, args with
  | ("msg_send" | "msg_send_int"), [ Value.Vint dst_rank; Value.Vint tag;
                                     (Value.Vptr _ as ptr); Value.Vint len ]
    ->
    if len < 0 then raise (Process.Extern_failure "msg_send: negative length");
    (match Hashtbl.find_opt t.rank_mailboxes dst_rank with
    | Some dst_mailbox ->
      let payload = read_cells ptr len in
      let bytes = 8 * len in
      Simnet.record_message t.net bytes;
      let msg =
        {
          Mpi.msg_src_rank =
            (match entry.rank with Some r -> r | None -> -1);
          msg_src_pid = proc.Process.pid;
          msg_tag = tag;
          msg_payload = payload;
          msg_deliver_at =
            effective_now t proc +. Simnet.message_seconds t.net bytes;
          msg_spec =
            (match Spec.Engine.current_unique proc.Process.spec with
            | Some uid -> Some (proc.Process.pid, uid)
            | None -> None);
        }
      in
      Mpi.enqueue dst_mailbox msg;
      emit_entry t entry
        (Obs.Trace.Msg_send { dst = dst_rank; tag; cells = len });
      (* wake the current holder of the rank, if any *)
      (match entry_of_rank t dst_rank with
      | Some dst -> dst.proc.Process.waiting <- false
      | None -> ());
      Value.Vint 0
    | None -> Value.Vint (-1))
  | ("msg_try_recv" | "msg_try_recv_int"),
    [ Value.Vint src_rank; Value.Vint tag; (Value.Vptr _ as ptr);
      Value.Vint maxlen ] -> (
    match
      Mpi.try_recv entry.mailbox ~now:(effective_now t proc) ~src_rank ~tag
    with
    | Mpi.Roll ->
      entry.parked_on <- None;
      emit_entry t entry (Obs.Trace.Msg_roll { src = src_rank });
      Value.Vint msg_roll
    | Mpi.None_yet ->
      proc.Process.waiting <- true;
      entry.parked_on <- Some (src_rank, tag);
      Value.Vint msg_none
    | Mpi.Received m ->
      entry.parked_on <- None;
      let n = min maxlen (Array.length m.Mpi.msg_payload) in
      emit_entry t entry
        (Obs.Trace.Msg_recv { src = src_rank; tag; cells = n });
      write_cells ptr m.Mpi.msg_payload n;
      (match m.Mpi.msg_spec with
      | Some (spid, uid) when spid <> proc.Process.pid ->
        (* join the sender's speculation *)
        let ruid =
          match Spec.Engine.current_unique proc.Process.spec with
          | Some u -> u
          | None -> -1
        in
        add_dependency t ~sender:(spid, uid)
          ~receiver:(proc.Process.pid, ruid)
      | Some _ | None -> ());
      Value.Vint n)
  | "rank", [] ->
    Value.Vint (match entry.rank with Some r -> r | None -> -1)
  | "sim_now_us", [] ->
    Value.Vint (int_of_float (effective_now t proc *. 1e6))
  | "fs_write", [ (Value.Vptr _ as pathp); (Value.Vptr _ as ptr);
                  Value.Vint k ] ->
    let path = Heap.raw_to_string heap (fst (Vm.Interp.as_ptr pathp)) in
    (* a write from inside a speculation is undoable *)
    (match Spec.Engine.current_unique proc.Process.spec with
    | Some uid ->
      let key = proc.Process.pid, uid in
      let log =
        match Hashtbl.find_opt t.fs_undo key with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add t.fs_undo key l;
          l
      in
      if not (List.mem_assoc path !log) then
        log :=
          (path, Option.map fst (Storage.read t.storage path)) :: !log
    | None -> ());
    let cells = read_cells ptr k in
    let data =
      String.init k (fun i ->
          match cells.(i) with
          | Value.Vint b -> Char.chr (b land 0xff)
          | _ -> raise (Process.Extern_failure "fs_write: non-byte cell"))
    in
    charge_seconds proc (Storage.write t.storage path data);
    Value.Vint k
  | "fs_read", [ (Value.Vptr _ as pathp); (Value.Vptr _ as ptr);
                 Value.Vint k ] -> (
    let path = Heap.raw_to_string heap (fst (Vm.Interp.as_ptr pathp)) in
    match Storage.read t.storage path with
    | None -> Value.Vint (-1)
    | Some (data, dt) ->
      charge_seconds proc dt;
      let n = min k (String.length data) in
      let payload =
        Array.init n (fun i -> Value.Vint (Char.code data.[i]))
      in
      write_cells ptr payload n;
      Value.Vint n)
  | "fs_size", [ (Value.Vptr _ as pathp) ] -> (
    let path = Heap.raw_to_string heap (fst (Vm.Interp.as_ptr pathp)) in
    match Storage.size t.storage path with
    | Some n -> Value.Vint n
    | None -> Value.Vint (-1))
  | "obj_read", [ Value.Vint obj; (Value.Vptr _ as ptr); Value.Vint k ] ->
    if Random.State.float t.rng 1.0 < t.obj_fail_prob then Value.Vint (-1)
    else begin
      match Hashtbl.find_opt t.obj_store obj with
      | None -> Value.Vint (-1)
      | Some data ->
        let n = min k (Bytes.length data) in
        let payload =
          Array.init n (fun i -> Value.Vint (Char.code (Bytes.get data i)))
        in
        write_cells ptr payload n;
        Value.Vint n
    end
  | "obj_write", [ Value.Vint obj; (Value.Vptr _ as ptr); Value.Vint k ] ->
    if Random.State.float t.rng 1.0 < t.obj_fail_prob then Value.Vint (-1)
    else begin
      (* a write from inside a speculation is undoable *)
      (match Spec.Engine.current_unique proc.Process.spec with
      | Some uid ->
        let key = proc.Process.pid, uid in
        let log =
          match Hashtbl.find_opt t.obj_undo key with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add t.obj_undo key l;
            l
        in
        if not (List.mem_assoc obj !log) then
          log :=
            (obj, Option.map Bytes.copy (Hashtbl.find_opt t.obj_store obj))
            :: !log
      | None -> ());
      let cells = read_cells ptr k in
      let data =
        match Hashtbl.find_opt t.obj_store obj with
        | Some d when Bytes.length d >= k -> d
        | _ -> Bytes.make (max k 1) '\000'
      in
      Array.iteri
        (fun i v ->
          match v with
          | Value.Vint b -> Bytes.set data i (Char.chr (b land 0xff))
          | _ -> raise (Process.Extern_failure "obj_write: non-byte cell"))
        cells;
      Hashtbl.replace t.obj_store obj data;
      Value.Vint k
    end
  | ( ( "msg_send" | "msg_send_int" | "msg_try_recv" | "msg_try_recv_int"
      | "rank" | "sim_now_us" | "obj_read" | "obj_write" | "fs_write"
      | "fs_read" | "fs_size" ),
      _ ) ->
    raise
      (Process.Extern_failure
         (Printf.sprintf "extern %s: bad arguments" name))
  | _ -> raise (Process.Extern_failure ("unknown extern " ^ name))

let handler t entry = Extern.combine (cluster_extern t entry) Extern.base

(* ------------------------------------------------------------------ *)
(* Object store setup (Figure 1 example)                               *)
(* ------------------------------------------------------------------ *)

let set_object t obj data =
  Hashtbl.replace t.obj_store obj (Bytes.of_string data)

let get_object t obj =
  Option.map Bytes.to_string (Hashtbl.find_opt t.obj_store obj)

let set_object_failure_probability t p = t.obj_fail_prob <- p

(* ------------------------------------------------------------------ *)
(* Process placement                                                   *)
(* ------------------------------------------------------------------ *)

(* When a level commits into its parent, its dependents become dependents
   of the parent; committing into level 0 makes the values durable and the
   dependencies dissolve. *)
let rekey_dependencies t ~pid ~uid ~parent =
  (match Hashtbl.find_opt t.deps (pid, uid) with
  | None -> ()
  | Some dependents -> (
    Hashtbl.remove t.deps (pid, uid);
    match parent with
    | None -> ()
    | Some parent_uid ->
      List.iter
        (fun d -> add_dependency t ~sender:(pid, parent_uid) ~receiver:d)
        !dependents));
  (* object-store and file undo entries fold into the parent level; the
     parent's own (older) saved contents win, like heap checkpoint
     records *)
  let fold_undo : 'k 'v. (int * int, ('k * 'v) list ref) Hashtbl.t -> unit =
   fun table ->
    match Hashtbl.find_opt table (pid, uid) with
    | None -> ()
    | Some child -> (
      Hashtbl.remove table (pid, uid);
      match parent with
      | None -> () (* committed for good: the writes are durable *)
      | Some parent_uid -> (
        let key = pid, parent_uid in
        match Hashtbl.find_opt table key with
        | None -> Hashtbl.add table key child
        | Some plog ->
          List.iter
            (fun (k, old) ->
              if not (List.mem_assoc k !plog) then plog := (k, old) :: !plog)
            (List.rev !child)))
  in
  fold_undo t.obj_undo;
  fold_undo t.fs_undo

let rank_mailbox t rank =
  match Hashtbl.find_opt t.rank_mailboxes rank with
  | Some mbox -> mbox
  | None ->
    let mbox = Mpi.create_mailbox () in
    Hashtbl.add t.rank_mailboxes rank mbox;
    mbox

let mailbox_for t rank =
  match rank with
  | Some r -> rank_mailbox t r
  | None -> Mpi.create_mailbox ()

let register_entry t (entry : entry) =
  t.entries <- entry :: t.entries;
  Hashtbl.replace t.by_pid entry.proc.Process.pid entry;
  let pid = entry.proc.Process.pid in
  Spec.Engine.set_hooks entry.proc.Process.spec
    ~on_enter:(fun ~uid ~depth ->
      emit_entry t entry (Obs.Trace.Spec_enter { uid; depth }))
    ~on_rollback:(fun uids ->
      emit_entry t entry (Obs.Trace.Spec_rollback { uids });
      cascade t ~sender_pid:pid ~uids ~code:msg_roll)
    ~on_commit:(fun ~uid ~parent ->
      emit_entry t entry
        (Obs.Trace.Spec_commit { uid; durable = parent = None });
      rekey_dependencies t ~pid ~uid ~parent);
  entry.proc.Process.on_gc <-
    Some
      (fun res ->
        emit_entry t entry
          (Obs.Trace.Gc
             {
               gc_kind =
                 (match res.Gc.kind with
                 | Gc.Minor -> Obs.Trace.Minor
                 | Gc.Major -> Obs.Trace.Major);
               live = res.Gc.live_blocks;
               collected = res.Gc.collected_blocks;
             }));
  match entry.rank with
  | Some r -> Hashtbl.replace t.ranks r entry.proc.Process.pid
  | None -> ()

let spawn ?rank ?(engine = `Interp) ?(seed = 7) t ~node_id program =
  let n = node t node_id in
  if not n.alive then invalid_arg "Cluster.spawn: node is down";
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let proc = Process.create ~pid ~arch:n.node_arch ~seed program in
  let engine =
    match engine with
    | `Interp -> Interp_engine
    | `Masm ->
      Emu_engine
        (Emulator.create (Codegen.compile ~arch:n.node_arch program) proc)
  in
  let entry =
    {
      proc;
      engine;
      node_id;
      mailbox = mailbox_for t rank;
      rank;
      start_at = (node t node_id).clock;
      parked_on = None;
    }
  in
  register_entry t entry;
  log t "spawned pid %d (rank %s) on %s" pid
    (match rank with Some r -> string_of_int r | None -> "-")
    n.node_name;
  pid

(* A process that migrates (or is resurrected) gets a NEW pid and its
   speculation levels are re-installed with FRESH unique ids.  The
   distributed-speculation registries are keyed by (pid, uid), so every
   key and every dependent entry naming the old identity must be re-keyed
   to the successor, or dependents could escape a later cascade.
   [uid_map] pairs old level uids with new ones (both newest-first). *)
let rekey_identity t ~old_pid ~new_pid ~uid_map =
  let map_uid uid =
    match List.assoc_opt uid uid_map with Some u -> u | None -> uid
  in
  let map_key (pid, uid) =
    if pid = old_pid then new_pid, map_uid uid else pid, uid
  in
  (* dependency edges: keys (senders) and list entries (receivers) *)
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.deps [] in
  Hashtbl.reset t.deps;
  List.iter
    (fun (k, v) ->
      v := List.map map_key !v;
      let k' = map_key k in
      match Hashtbl.find_opt t.deps k' with
      | None -> Hashtbl.add t.deps k' v
      | Some existing -> existing := !v @ !existing)
    entries;
  (* external-state undo logs: keys only (they name the writer) *)
  let rekey_undo : 'k 'v. (int * int, ('k * 'v) list ref) Hashtbl.t -> unit =
   fun table ->
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
    Hashtbl.reset table;
    List.iter
      (fun (k, v) ->
        let k' = map_key k in
        match Hashtbl.find_opt table k' with
        | None -> Hashtbl.add table k' v
        | Some existing -> existing := !v @ !existing)
      entries
  in
  rekey_undo t.obj_undo;
  rekey_undo t.fs_undo

(* ------------------------------------------------------------------ *)
(* Migration protocols                                                 *)
(* ------------------------------------------------------------------ *)

(* Simulated pack cost: one memory access per heap cell on the source. *)
let pack_seconds (proc : Process.t) =
  let cells = Heap.used_cells proc.Process.heap in
  Arch.seconds proc.Process.arch
    (cells * proc.Process.arch.Arch.cycles Arch.Mem)

(* Every storage/migration image is both itemised (the record list the
   benches read) and aggregated into the metrics registry. *)
let record_migration t mr =
  t.migrations <- mr :: t.migrations;
  (match mr.mr_kind with
  | `Checkpoint -> Obs.Metrics.incr t.c_checkpoints
  | `Migrate | `Suspend ->
    if mr.mr_ok then Obs.Metrics.incr t.c_migrations_ok
    else Obs.Metrics.incr t.c_migrations_failed);
  if mr.mr_cache_hit then Obs.Metrics.incr t.c_migration_cache_hits;
  Obs.Metrics.observe t.h_migrate_bytes (float_of_int mr.mr_bytes);
  Obs.Metrics.observe t.h_pack_s mr.mr_pack_s;
  Obs.Metrics.observe t.h_transfer_s mr.mr_transfer_s;
  Obs.Metrics.observe t.h_compile_s mr.mr_compile_s

let handle_migrate t (entry : entry) _req host =
  let proc = entry.proc in
  let src = node t entry.node_id in
  match node_by_name t host with
  | Some target when target.alive && target.node_id <> entry.node_id ->
    let with_binary =
      t.trusted && Arch.equal src.node_arch target.node_arch
    in
    let packed = Migrate.Pack.pack_request ~with_binary proc in
    let bytes = String.length packed.Migrate.Pack.p_bytes in
    let pack_s = pack_seconds proc in
    let transfer_s = Simnet.transfer_seconds t.net bytes in
    Simnet.record_transfer t.net bytes;
    emit_entry t entry (Obs.Trace.Migrate_start { target = host; bytes });
    (match Migrate.Server.handle target.daemon packed.Migrate.Pack.p_bytes
     with
    | Ok outcome ->
      let old_uids = Spec.Engine.unique_ids proc.Process.spec in
      let compile_s =
        Arch.seconds target.node_arch
          outcome.Migrate.Server.o_costs.Migrate.Pack.u_compile_cycles
      in
      let new_proc = outcome.Migrate.Server.o_process in
      (* keep pids cluster-unique *)
      let pid = t.next_pid in
      t.next_pid <- t.next_pid + 1;
      let new_proc = { new_proc with Process.pid } in
      let new_entry =
        {
          proc = new_proc;
          engine = Emu_engine (Emulator.create outcome.Migrate.Server.o_masm new_proc);
          node_id = target.node_id;
          mailbox = entry.mailbox; (* rank-addressed messages follow *)
          rank = entry.rank;
          start_at =
            max target.clock (src.clock +. pack_s +. transfer_s)
            +. compile_s;
          parked_on = None;
        }
      in
      Process.migration_completed proc;
      register_entry t new_entry;
      rekey_identity t ~old_pid:proc.Process.pid ~new_pid:pid
        ~uid_map:
          (List.combine old_uids
             (Spec.Engine.unique_ids new_proc.Process.spec));
      src.busy_seconds <- src.busy_seconds +. pack_s;
      target.busy_seconds <- target.busy_seconds +. compile_s;
      record_migration t
        {
          mr_kind = `Migrate;
          mr_pid = proc.Process.pid;
          mr_bytes = bytes;
          mr_pack_s = pack_s;
          mr_transfer_s = transfer_s;
          mr_compile_s = compile_s;
          mr_cache_hit =
            outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit;
          mr_ok = true;
        };
      let cache_hit =
        outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit
      in
      emit t
        ~time:(max target.clock (src.clock +. pack_s +. transfer_s))
        ~node:target.node_id ~pid ~rank:(entry_rank new_entry)
        (if cache_hit then Obs.Trace.Cache_hit else Obs.Trace.Cache_miss);
      emit t ~time:new_entry.start_at ~node:target.node_id ~pid
        ~rank:(entry_rank new_entry)
        (Obs.Trace.Migrate_done
           { ok = true; cache_hit; bytes; pack_s; transfer_s; compile_s });
      log t "pid %d migrated %s -> %s (%d bytes, new pid %d)"
        proc.Process.pid src.node_name target.node_name bytes pid
    | Error msg ->
      log t "pid %d migration to %s rejected: %s" proc.Process.pid host msg;
      record_migration t
        {
          mr_kind = `Migrate;
          mr_pid = proc.Process.pid;
          mr_bytes = bytes;
          mr_pack_s = pack_s;
          mr_transfer_s = transfer_s;
          mr_compile_s = 0.0;
          mr_cache_hit = false;
          mr_ok = false;
        };
      emit_entry t entry
        (Obs.Trace.Migrate_done
           {
             ok = false;
             cache_hit = false;
             bytes;
             pack_s;
             transfer_s;
             compile_s = 0.0;
           });
      Process.migration_failed proc)
  | Some _ | None ->
    log t "pid %d migration target %s unavailable" proc.Process.pid host;
    emit_entry t entry (Obs.Trace.Migrate_start { target = host; bytes = 0 });
    emit_entry t entry
      (Obs.Trace.Migrate_done
         {
           ok = false;
           cache_hit = false;
           bytes = 0;
           pack_s = 0.0;
           transfer_s = 0.0;
           compile_s = 0.0;
         });
    Process.migration_failed proc

let handle_to_storage t (entry : entry) req path ~kind =
  let proc = entry.proc in
  (* images on the cluster's own reliable store carry the binary payload:
     "the checkpoints are formatted as executable files and the
     resurrection of processes is done by executing the saved checkpoint"
     (paper, Section 2) *)
  let packed = Migrate.Pack.pack_request ~with_binary:true proc in
  let bytes = String.length packed.Migrate.Pack.p_bytes in
  let pack_s = pack_seconds proc in
  let write_s = Storage.write t.storage path packed.Migrate.Pack.p_bytes in
  record_migration t
    {
      mr_kind = kind;
      mr_pid = proc.Process.pid;
      mr_bytes = bytes;
      mr_pack_s = pack_s;
      mr_transfer_s = write_s;
      mr_compile_s = 0.0;
      mr_cache_hit = false;
      mr_ok = true;
    };
  (match kind with
  | `Checkpoint ->
    (* the process pays for its checkpoint and keeps running *)
    charge_seconds proc (pack_s +. write_s);
    Process.migration_failed proc (* "failure" = continue locally *)
  | `Suspend | `Migrate ->
    charge_seconds proc pack_s;
    Process.migration_completed proc);
  emit_entry t entry (Obs.Trace.Checkpoint { path; bytes });
  log t "pid %d wrote %s image %s (%d bytes)" proc.Process.pid
    (match kind with `Checkpoint -> "checkpoint" | _ -> "suspend")
    path bytes;
  ignore req

let handle_migration t (entry : entry) =
  match entry.proc.Process.status with
  | Process.Migrating req -> (
    match Migrate.Protocol.parse req.Process.m_target with
    | Migrate.Protocol.Migrate_to host -> handle_migrate t entry req host
    | Migrate.Protocol.Suspend_to path ->
      handle_to_storage t entry req path ~kind:`Suspend
    | Migrate.Protocol.Checkpoint_to path ->
      handle_to_storage t entry req path ~kind:`Checkpoint
    | exception Migrate.Protocol.Bad_target _ ->
      log t "pid %d: bad migration target %S" entry.proc.Process.pid
        req.Process.m_target;
      Process.migration_failed entry.proc)
  | Process.Running | Process.Exited _ | Process.Trapped _ -> ()

(* ------------------------------------------------------------------ *)
(* Failure and resurrection                                            *)
(* ------------------------------------------------------------------ *)

let fail_node t node_id =
  let n = node t node_id in
  if n.alive then begin
    n.alive <- false;
    log t "%s FAILED" n.node_name;
    Obs.Metrics.incr t.c_node_failures;
    emit t ~time:n.clock ~node:node_id Obs.Trace.Node_fail;
    let victims =
      List.filter
        (fun (e : entry) ->
          e.node_id = node_id && not (Process.is_terminated e.proc))
        t.entries
    in
    List.iter
      (fun (e : entry) ->
        let uids = Spec.Engine.unique_ids e.proc.Process.spec in
        e.proc.Process.status <- Process.Trapped "node failure";
        (* everyone who consumed this process's speculative messages rolls
           back with it *)
        cascade t ~sender_pid:e.proc.Process.pid ~uids ~code:msg_roll;
        (* survivors polling this rank observe MSG_ROLL *)
        match e.rank with
        | Some dead_rank ->
          List.iter
            (fun other ->
              if
                other.proc.Process.pid <> e.proc.Process.pid
                && not (Process.is_terminated other.proc)
              then begin
                Mpi.post_roll_notice other.mailbox ~src_rank:dead_rank;
                (* only wake a survivor the notice is relevant to: one
                   parked on the dead rank (or parked without a recorded
                   source).  Waking a process parked on an UNRELATED rank
                   would violate the parked_on contract — the scheduler
                   would spin it on a poll that still returns nothing *)
                match other.parked_on with
                | Some (src, _) when src = dead_rank ->
                  other.proc.Process.waiting <- false
                | Some _ -> ()
                | None -> other.proc.Process.waiting <- false
              end)
            t.entries
        | None -> ())
      victims
  end

(* Resurrect a checkpointed process from shared storage on a live node
   (the paper's resurrection daemon executing the saved checkpoint). *)
let resurrect ?rank ?(seed = 11) t ~node_id ~path =
  let n = node t node_id in
  let failed msg =
    emit t ~time:(now t) ~node:node_id
      (Obs.Trace.Resurrect { path; ok = false });
    Error msg
  in
  if not n.alive then failed "resurrection node is down"
  else
    match Storage.read t.storage path with
    | None -> failed ("no checkpoint " ^ path)
    | Some (bytes, read_s) -> (
      (* executing a saved checkpoint from the cluster's own store is
         within the trust domain: same-architecture resurrections take
         the binary fast path (link only); cross-architecture ones
         recompile from the FIR *)
      match
        Migrate.Pack.unpack ~seed ~trusted:true ~extern_signatures
          ?cache:(Migrate.Server.cache n.daemon) ~arch:n.node_arch bytes
      with
      | Error msg -> failed msg
      | Ok (proc0, masm, costs) ->
        let outcome =
          { Migrate.Server.o_pid = 0; o_costs = costs; o_process = proc0;
            o_masm = masm }
        in
        let pid = t.next_pid in
        t.next_pid <- t.next_pid + 1;
        let proc = { outcome.Migrate.Server.o_process with Process.pid } in
        let compile_s =
          Arch.seconds n.node_arch
            outcome.Migrate.Server.o_costs.Migrate.Pack.u_compile_cycles
        in
        let entry =
          {
            proc;
            engine = Emu_engine (Emulator.create outcome.Migrate.Server.o_masm proc);
            node_id;
            mailbox = mailbox_for t rank;
            rank;
            start_at = now t +. read_s +. compile_s;
            parked_on = None;
          }
        in
        register_entry t entry;
        n.busy_seconds <- n.busy_seconds +. compile_s;
        Obs.Metrics.incr t.c_resurrections;
        (* a resurrection is an inbound migration from the store: the
           saved image travels through the same unpack/code-cache path
           as a live migration, so it shows up in the trace as one *)
        emit t ~time:(now t) ~node:node_id ~pid ~rank:(entry_rank entry)
          (Obs.Trace.Migrate_start
             { target = n.node_name; bytes = String.length bytes });
        emit t ~time:entry.start_at ~node:node_id ~pid
          ~rank:(entry_rank entry)
          (if outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit then
             Obs.Trace.Cache_hit
           else Obs.Trace.Cache_miss);
        emit t ~time:entry.start_at ~node:node_id ~pid
          ~rank:(entry_rank entry)
          (Obs.Trace.Migrate_done
             {
               ok = true;
               cache_hit =
                 outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit;
               bytes = String.length bytes;
               pack_s = 0.0;
               transfer_s = read_s;
               compile_s;
             });
        emit t ~time:entry.start_at ~node:node_id ~pid
          ~rank:(entry_rank entry)
          (Obs.Trace.Resurrect { path; ok = true });
        log t "resurrected %s as pid %d (rank %s) on %s" path pid
          (match rank with Some r -> string_of_int r | None -> "-")
          n.node_name;
        Ok pid)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let runnable t (e : entry) =
  let n = node t e.node_id in
  n.alive
  && (not (Process.is_terminated e.proc))
  && (match e.proc.Process.status with
     | Process.Running -> true
     | Process.Migrating _ -> true
     | Process.Exited _ | Process.Trapped _ -> false)
  && e.start_at <= n.clock

(* Wake parked processes on [n] whose awaited event is due on the node's
   local clock. *)
let wake_ready t n =
  List.iter
    (fun (e : entry) ->
      if e.node_id = n.node_id && e.proc.Process.waiting then
        let ready =
          match e.parked_on with
          | Some (src, tag) ->
            Mpi.has_roll_notice e.mailbox ~src_rank:src
            || Mpi.has_delivered e.mailbox ~now:n.clock ~src_rank:src ~tag
          | None ->
            (match Mpi.next_delivery e.mailbox with
            | Some at -> at <= n.clock
            | None -> false)
            || Mpi.has_any_roll_notice e.mailbox
        in
        if ready then e.proc.Process.waiting <- false)
    t.entries

(* The earliest future event relevant to node [n]: a delayed process
   start, or the delivery a parked process is waiting for. *)
let next_event_on t n =
  List.fold_left
    (fun acc (e : entry) ->
      if e.node_id <> n.node_id || Process.is_terminated e.proc then acc
      else
        let candidates = ref [] in
        if e.start_at > n.clock then candidates := e.start_at :: !candidates;
        if e.proc.Process.waiting then begin
          match e.parked_on with
          | Some (src, tag) -> (
            match Mpi.next_matching_delivery e.mailbox ~src_rank:src ~tag
            with
            | Some at -> candidates := at :: !candidates
            | None -> ())
          | None -> (
            match Mpi.next_delivery e.mailbox with
            | Some at -> candidates := at :: !candidates
            | None -> ())
        end;
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some a -> Some (min a c))
          acc !candidates)
    None t.entries

(* Run one scheduling round: each alive node runs its runnable,
   non-parked processes for one quantum and advances its LOCAL clock by
   the work done.  Nodes therefore progress independently and in
   parallel; processes sharing a node serialise (and pay context
   switches).  Returns true if any process made progress. *)
let round t =
  Obs.Metrics.incr t.c_rounds;
  let progressed = ref false in
  Array.iter
    (fun n ->
      if n.alive then begin
        wake_ready t n;
        let procs =
          List.filter
            (fun (e : entry) ->
              e.node_id = n.node_id && runnable t e
              && not e.proc.Process.waiting)
            (List.rev t.entries)
        in
        let node_cycles = ref 0 in
        let ran = ref 0 in
        List.iter
          (fun (e : entry) ->
            let before = e.proc.Process.cycles in
            (* time base for extern handlers running in this quantum *)
            t.cur_base <- n.clock +. Arch.seconds n.node_arch !node_cycles;
            t.cur_cycles0 <- before;
            t.cur_pid <- e.proc.Process.pid;
            let ext = handler t e in
            let steps = ref t.quantum in
            while
              !steps > 0
              && (match e.proc.Process.status with
                 | Process.Running -> true
                 | _ -> false)
              && not e.proc.Process.waiting
            do
              (match e.engine with
              | Interp_engine -> Interp.step ~extern:ext e.proc
              | Emu_engine emu -> Emulator.step ~extern:ext emu);
              decr steps
            done;
            (match e.proc.Process.status with
            | Process.Migrating _ -> handle_migration t e
            | _ -> ());
            let delta = e.proc.Process.cycles - before in
            if delta > 0 || !steps < t.quantum then begin
              progressed := true;
              incr ran;
              Obs.Metrics.incr t.c_quanta
            end;
            node_cycles := !node_cycles + delta)
          procs;
        t.cur_pid <- -1;
        (* context switches between the processes that shared the node *)
        if !ran > 1 then
          node_cycles :=
            !node_cycles
            + (!ran * Emulator.context_switch_cycles n.node_arch);
        let delta_s = Arch.seconds n.node_arch !node_cycles in
        n.busy_seconds <- n.busy_seconds +. delta_s;
        n.clock <- n.clock +. delta_s;
        (* an idle node advances its clock to its next event (a pending
           delivery or a delayed process start): idle waiting is time
           passing, and it must pass even while other nodes stay busy *)
        if !ran = 0 then begin
          match next_event_on t n with
          | Some at when at > n.clock ->
            n.clock <- at;
            wake_ready t n;
            progressed := true
          | Some _ | None -> ()
        end;
        Simnet.advance_to t.net n.clock
      end)
    t.nodes;
  !progressed

(* Idle nodes jump their clocks to the next relevant event (a pending
   delivery or a delayed start).  Returns true if any clock moved. *)
let idle_advance t =
  let advanced = ref false in
  Array.iter
    (fun n ->
      if n.alive then begin
        wake_ready t n;
        let has_work =
          List.exists
            (fun (e : entry) ->
              e.node_id = n.node_id && runnable t e
              && not e.proc.Process.waiting)
            t.entries
        in
        if not has_work then
          match next_event_on t n with
          | Some at when at > n.clock ->
            n.clock <- at;
            Simnet.advance_to t.net n.clock;
            wake_ready t n;
            advanced := true
          | Some _ | None -> ()
      end)
    t.nodes;
  !advanced

(* Run until nothing can make progress anymore or [max_rounds] is hit.
   [stop] is polled between rounds for driver-controlled termination. *)
let run ?(max_rounds = 1_000_000) ?(stop = fun () -> false) t =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds && not (stop ()) do
    incr rounds;
    let progressed = round t in
    if not progressed then
      if not (idle_advance t) then continue_ := false
  done;
  !rounds

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let statuses t =
  List.rev_map
    (fun (e : entry) ->
      ( e.proc.Process.pid,
        e.rank,
        e.node_id,
        e.proc.Process.status ))
    t.entries

let events t = List.rev t.events
let migrations t = List.rev t.migrations
let storage t = t.storage
let net t = t.net
let trace t = t.tracer
let metrics t = t.metrics

(* Aggregate recompilation-cache statistics over every node's daemon. *)
let cache_hit_rate t =
  let hits = ref 0 and misses = ref 0 in
  Array.iter
    (fun n ->
      match Migrate.Server.cache n.daemon with
      | None -> ()
      | Some c ->
        let s = Migrate.Codecache.stats c in
        hits := !hits + s.Migrate.Codecache.hits;
        misses := !misses + s.Migrate.Codecache.misses)
    t.nodes;
  let total = !hits + !misses in
  if total = 0 then 0.0 else float_of_int !hits /. float_of_int total

let cache_reports t =
  Array.to_list t.nodes
  |> List.filter_map (fun n ->
         match Migrate.Server.cache n.daemon with
         | None -> None
         | Some c ->
           Some
             (Printf.sprintf "%s: %s" n.node_name
                (Migrate.Codecache.report c)))
let alive_count t =
  Array.fold_left (fun acc n -> if n.alive then acc + 1 else acc) 0 t.nodes

(* Public wrapper for host-initiated aborts (tests, recovery drivers):
   roll [pid] back to [level]; the dependency cascade follows from the
   engine hook. *)
let abort_speculation ?(code = msg_roll) t ~pid ~level =
  match entry_of_pid t pid with
  | None -> ()
  | Some entry -> (
    match entry.proc.Process.status with
    | Process.Running | Process.Migrating _ ->
      (match entry.proc.Process.status with
      | Process.Migrating _ -> Process.migration_failed entry.proc
      | _ -> ());
      Process.do_rollback entry.proc ~level ~code;
      entry.proc.Process.waiting <- false
    | Process.Exited _ | Process.Trapped _ -> ())

let node_count t = Array.length t.nodes

(* Transparent, host-initiated migration of a RUNNING process (the
   paper's load-balancing / mobile-agent use, Section 7): pack between
   basic blocks, ship, verify/recompile on the target daemon, terminate
   the source.  The process never observes the move. *)
let migrate_running t ~pid ~node_id =
  match entry_of_pid t pid with
  | None -> Error (Printf.sprintf "no process %d" pid)
  | Some entry -> (
    match entry.proc.Process.status with
    | Process.Exited _ | Process.Trapped _ | Process.Migrating _ ->
      Error "process is not running"
    | Process.Running -> (
      let src = node t entry.node_id in
      let target = node t node_id in
      if not target.alive then Error "target node is down"
      else if target.node_id = src.node_id then Error "already there"
      else begin
        let with_binary =
          t.trusted && Arch.equal src.node_arch target.node_arch
        in
        let packed = Migrate.Pack.pack_running ~with_binary entry.proc in
        let bytes = String.length packed.Migrate.Pack.p_bytes in
        let pack_s = pack_seconds entry.proc in
        let transfer_s = Simnet.transfer_seconds t.net bytes in
        Simnet.record_transfer t.net bytes;
        emit_entry t entry
          (Obs.Trace.Migrate_start { target = target.node_name; bytes });
        match Migrate.Server.handle target.daemon packed.Migrate.Pack.p_bytes
        with
        | Error msg ->
          (* failure is invisible: the process keeps running where it is *)
          record_migration t
            { mr_kind = `Migrate; mr_pid = pid; mr_bytes = bytes;
              mr_pack_s = pack_s; mr_transfer_s = transfer_s;
              mr_compile_s = 0.0; mr_cache_hit = false; mr_ok = false };
          emit_entry t entry
            (Obs.Trace.Migrate_done
               { ok = false; cache_hit = false; bytes; pack_s; transfer_s;
                 compile_s = 0.0 });
          Error msg
        | Ok outcome ->
          let old_uids = Spec.Engine.unique_ids entry.proc.Process.spec in
          let compile_s =
            Arch.seconds target.node_arch
              outcome.Migrate.Server.o_costs.Migrate.Pack.u_compile_cycles
          in
          let new_pid = t.next_pid in
          t.next_pid <- t.next_pid + 1;
          let new_proc =
            { outcome.Migrate.Server.o_process with Process.pid = new_pid }
          in
          let new_entry =
            {
              proc = new_proc;
              engine =
                Emu_engine
                  (Emulator.create outcome.Migrate.Server.o_masm new_proc);
              node_id = target.node_id;
              mailbox = entry.mailbox;
              rank = entry.rank;
              start_at =
                max target.clock (src.clock +. pack_s +. transfer_s)
                +. compile_s;
              parked_on = None;
            }
          in
          entry.proc.Process.status <- Process.Exited 0;
          register_entry t new_entry;
          rekey_identity t ~old_pid:pid ~new_pid
            ~uid_map:
              (List.combine old_uids
                 (Spec.Engine.unique_ids new_proc.Process.spec));
          src.busy_seconds <- src.busy_seconds +. pack_s;
          target.busy_seconds <- target.busy_seconds +. compile_s;
          record_migration t
            { mr_kind = `Migrate; mr_pid = pid; mr_bytes = bytes;
              mr_pack_s = pack_s; mr_transfer_s = transfer_s;
              mr_compile_s = compile_s;
              mr_cache_hit =
                outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit;
              mr_ok = true };
          let cache_hit =
            outcome.Migrate.Server.o_costs.Migrate.Pack.u_cache_hit
          in
          emit t
            ~time:(max target.clock (src.clock +. pack_s +. transfer_s))
            ~node:target.node_id ~pid:new_pid
            ~rank:(entry_rank new_entry)
            (if cache_hit then Obs.Trace.Cache_hit else Obs.Trace.Cache_miss);
          emit t ~time:new_entry.start_at ~node:target.node_id ~pid:new_pid
            ~rank:(entry_rank new_entry)
            (Obs.Trace.Migrate_done
               { ok = true; cache_hit; bytes; pack_s; transfer_s;
                 compile_s });
          log t
            "pid %d transparently migrated %s -> %s (%d bytes, new pid %d)"
            pid src.node_name target.node_name bytes new_pid;
          Ok new_pid
      end))
