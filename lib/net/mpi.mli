(** The customized message-passing interface used by distributed MCC
    applications (paper, Section 2).

    Processes address each other by RANK; payloads are copied by value
    between heaps.  A message sent from inside an uncommitted speculation
    carries the sending level's identity — a receiver that consumes it
    joins that speculation (the paper's relaxation of Isolation), and the
    cluster rolls them back together.

    The mailbox is indexed by (src_rank, tag): each key owns a two-list
    FIFO bucket, so receives and the scheduler's wake checks touch only
    the traffic they can match.  Enqueue is O(1), an N-message burst
    costs O(N) total, and delivery order within a key stays
    oldest-first; {!messages} reconstructs the global enqueue order
    from per-message stamps.

    Receive results surfaced to FIR code: [n >= 0] cells copied,
    {!msg_none} (nothing yet), or {!msg_roll} (the peer failed or rolled
    back: abort your speculation and retry, as in Figure 2). *)

open Runtime

val msg_none : int
(** The "nothing available" receive code (-1). *)

val msg_roll : int
(** The MSG_ROLL receive code (-2). *)

type message = {
  msg_src_rank : int;
  msg_src_pid : int;
  msg_tag : int;
  msg_payload : Value.t array;
  msg_deliver_at : float;  (** simulated arrival time *)
  msg_spec : (int * int) option;
      (** (sender pid, sender level unique id) when speculative *)
  msg_src_epoch : int;
      (** the sender's rank incarnation epoch at send time; fencing
          rejects messages from superseded incarnations *)
}

type mailbox
(** Abstract: the index representation is the mailbox's business.  Use
    {!messages} / {!exists_message} to inspect pending messages. *)

val create_mailbox : unit -> mailbox
val enqueue : mailbox -> message -> unit
val post_roll_notice : mailbox -> src_rank:int -> unit
val clear_roll_notice : mailbox -> src_rank:int -> unit
val has_roll_notice : mailbox -> src_rank:int -> bool
val has_any_roll_notice : mailbox -> bool

type recv_result = Received of message | Roll | None_yet

val try_recv : mailbox -> now:float -> src_rank:int -> tag:int -> recv_result
(** First delivered message matching (src, tag); a pending roll notice
    from that source takes priority and is consumed. *)

val discard_speculative : mailbox -> uids:int list -> sender_pid:int -> int
(** Drop queued messages originating from the given speculation levels
    (the sender rolled back: its speculative messages are unsent).
    Returns the number dropped. *)

val settle_speculative : mailbox -> uids:int list -> sender_pid:int -> int
(** Strip the speculative stamp from queued messages sent by the given
    levels (a distributed commit made the sender's effects durable, so
    its in-flight messages must stop carrying a join obligation).
    Returns the number settled. *)

val discard_stale : mailbox -> stale:(message -> bool) -> int
(** Drop queued messages from superseded sender incarnations (epoch
    fencing).  Returns the number dropped. *)

val next_delivery : mailbox -> float option

val next_matching_delivery :
  mailbox -> src_rank:int -> tag:int -> float option
(** Earliest pending delivery from a specific (src, tag) — what a parked
    receiver is actually waiting for. *)

val has_delivered : mailbox -> now:float -> src_rank:int -> tag:int -> bool
(** Is a matching message already deliverable at [now]? *)

val try_recv_any : mailbox -> now:float -> tag:int -> recv_result
(** Wildcard receive: first delivered message with [tag] from ANY
    source, in mailbox enqueue order (deterministic via the per-message
    stamps).  A pending roll notice from any rank takes priority; the
    lowest rank's notice is consumed. *)

val next_matching_delivery_any : mailbox -> tag:int -> float option
(** Earliest pending delivery with [tag] from any source — what a
    wildcard-parked receiver is waiting for. *)

val has_delivered_any : mailbox -> now:float -> tag:int -> bool
(** Is any message with [tag] already deliverable at [now]? *)

val take_all : mailbox -> message list
(** Remove and return everything queued, oldest first (the migration
    path drains a re-homed service's old mailbox through its
    forwarder). *)

val pending : mailbox -> int

val messages : mailbox -> message list
(** Queued messages, oldest first. *)

val exists_message : mailbox -> (message -> bool) -> bool
