(** Distributed-speculation transactions: the coordinator-side state of
    the epoch-fenced two-phase commit over speculative regions (ISSUE
    10; the paper's Section 6 speculation extended across processes).

    A process that opened a speculative region may send messages from
    inside it; every receiver that consumes one JOINS the region (the
    engine's dependency tracking).  To fold such a region durably the
    coordinator must get every participant's agreement first — a
    participant may since have been superseded by a newer incarnation of
    its rank (its ack would come from a zombie), may have died, or may
    crash between its prepare-ack and the commit receipt.  {!Dspec}
    keeps the transaction table the cluster's commit protocol runs over:
    who coordinates, which root speculation level the transaction
    covers, and each participant's identity {e pinned to the incarnation
    epoch it had when it joined}.  At prepare time the recorded epoch is
    compared against the rank's current epoch; any mismatch voids the
    ack and forces an abort — a resurrected zombie can never speak for a
    dead incarnation.

    The table is cluster-global (it lives beside the registry, not
    inside any process image), so transactions survive the migration of
    their coordinator or participants; {!rebind_pid} re-keys the stored
    identities when a process is re-instantiated under a new pid. *)

type part = {
  mutable p_pid : int;
  mutable p_rank : int;
  mutable p_epoch : int;
      (** the participant rank's incarnation epoch when it joined; a
          prepare-ack is only valid while this is still current *)
}

type state =
  | Open
  | Committed
  | Aborted of string
      (** reason: "fence" | "crash_in_commit" | "coordinator_dead" |
          "participant_dead" *)

type txn = {
  x_id : int;
  mutable x_coord_pid : int;
  mutable x_root_uid : int;
      (** the coordinator's speculation level whose commit the protocol
          decides (stable unique id, survives migration via re-keying) *)
  mutable x_coord_laddr : int;
      (** logical address of the coordinating service, [-1] when it is
          not a registered service *)
  mutable x_state : state;
  mutable x_parts : part list;  (** newest first *)
  mutable x_compensated : bool;
      (** an abort's mailbox compensation has been accounted (the
          [Dspec_compensate] trace fires once per aborted txn) *)
}

type t

val create : ?metrics:Obs.Metrics.t -> unit -> t
(** [metrics] receives the protocol counters ([dspec.opened],
    [dspec.prepares], [dspec.prepare_acks], [dspec.commits],
    [dspec.aborts], [dspec.fence_rejections], [dspec.compensated]); a
    private registry is used when omitted. *)

val open_txn : t -> coord_pid:int -> root_uid:int -> coord_laddr:int -> txn
(** Allocate a fresh transaction (ids sequential from 1) rooted at the
    coordinator's current speculation level. *)

val find : t -> int -> txn option

val register : txn -> pid:int -> rank:int -> epoch:int -> unit
(** Record [pid] as a participant at its current incarnation epoch.
    Re-registering an existing participant updates its rank and epoch
    (a participant that migrated re-joins under its successor's
    identity). *)

val open_coordinated_by : t -> pid:int -> txn list
(** The still-open transactions coordinated by [pid] — what must abort
    when that process's node fails. *)

val open_with_root : t -> coord_pid:int -> root_uid:int -> txn option
(** The open transaction rooted at exactly this coordinator level, if
    any (how the send path recognises traffic that must register its
    receiver as a participant). *)

val aborted_with_root : t -> coord_pid:int -> root_uid:int -> txn option
(** The not-yet-compensated aborted transaction whose root level is
    [root_uid] — the rollback path claims it to account the mailbox
    compensation exactly once. *)

val rebind_pid :
  t -> old_pid:int -> new_pid:int -> uid_map:(int * int) list ->
  rank:int -> epoch:int -> unit
(** A process was re-instantiated (migration or resurrection):
    [old_pid] becomes [new_pid] everywhere in the table.  Where it
    coordinates, the root uid is translated through [uid_map] (the
    old-engine → new-engine stable-uid correspondence).  Where it
    participates, its recorded rank AND epoch are refreshed — a
    deliberate re-home is not a zombie, so its ack stays valid. *)

(** {2 Counters} — bumped by the cluster's protocol driver. *)

val c_opened : t -> Obs.Metrics.counter
val c_prepares : t -> Obs.Metrics.counter
val c_prepare_acks : t -> Obs.Metrics.counter
val c_commits : t -> Obs.Metrics.counter
val c_aborts : t -> Obs.Metrics.counter
val c_fence_rejections : t -> Obs.Metrics.counter
val c_compensated : t -> Obs.Metrics.counter
