(* Placement policy engine: gauges + affinity + InfotonOpt-style
   scorer.  Pure planning; Cluster executes proposals via Move. *)

module Config = struct
  type t = {
    enabled : bool;
    period_s : float;
    tolerance : float;
    move_budget : int;
    affinity_decay : float;
  }

  let default =
    {
      enabled = false;
      period_s = 0.002;
      tolerance = 0.25;
      move_budget = 2;
      affinity_decay = 0.5;
    }
end

type node_load = {
  nl_node : int;
  nl_alive : bool;
  nl_runnable : int;
  nl_cycles_per_s : float;
  nl_mailbox : int;
}

type candidate = { cd_pid : int; cd_node : int; cd_load : float }
type proposal = { pr_pid : int; pr_from : int; pr_to : int; pr_gain : float }

type t = {
  cfg : Config.t;
  aff : (int, (int, float) Hashtbl.t) Hashtbl.t;
      (* pid -> peer rank -> decayed message count *)
}

let create cfg = { cfg; aff = Hashtbl.create 64 }
let config t = t.cfg

let w_runnable = 0.05
let w_mailbox = 0.005

let load_of nl =
  nl.nl_cycles_per_s
  +. (w_runnable *. float_of_int nl.nl_runnable)
  +. (w_mailbox *. float_of_int nl.nl_mailbox)

(* The candidate's mass must be measured in the same units as [load_of]
   INCLUDING its runnable slot and mailbox terms: both travel with the
   process.  Price either one as zero and a lone process on its own
   node looks cheaper to move than the load it leaves behind — the
   planner then relocates it to an empty node every period (churn that
   relocates the queue without ever shrinking the spread). *)
let candidate_load ~cycles_per_s ~mailbox =
  cycles_per_s +. w_runnable +. (w_mailbox *. float_of_int mailbox)

(* ---------- affinity matrix ---------- *)

let row t pid =
  match Hashtbl.find_opt t.aff pid with
  | Some r -> r
  | None ->
      let r = Hashtbl.create 8 in
      Hashtbl.replace t.aff pid r;
      r

let note_comm t ~pid ~peer_rank =
  let r = row t pid in
  let v = match Hashtbl.find_opt r peer_rank with Some v -> v | None -> 0. in
  Hashtbl.replace r peer_rank (v +. 1.)

let decay t =
  let dead = ref [] in
  Hashtbl.iter
    (fun pid r ->
      let drop = ref [] in
      Hashtbl.iter
        (fun peer v ->
          let v' = v *. t.cfg.Config.affinity_decay in
          if v' < 1e-6 then drop := peer :: !drop
          else Hashtbl.replace r peer v')
        r;
      List.iter (Hashtbl.remove r) !drop;
      if Hashtbl.length r = 0 then dead := pid :: !dead)
    t.aff;
  List.iter (Hashtbl.remove t.aff) !dead

let rekey t ~old_pid ~new_pid =
  match Hashtbl.find_opt t.aff old_pid with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.aff old_pid;
      Hashtbl.replace t.aff new_pid r

let forget t ~pid = Hashtbl.remove t.aff pid

let affinity t ~pid =
  match Hashtbl.find_opt t.aff pid with
  | None -> []
  | Some r ->
      Hashtbl.fold (fun peer v acc -> (peer, v) :: acc) r []
      |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Affinity mass from [pid] toward processes resident on [node].
   Summed in sorted-rank order so the float sum is deterministic
   regardless of hash-table iteration order. *)
let attraction t ~pid ~node ~node_of_rank =
  match Hashtbl.find_opt t.aff pid with
  | None -> 0.
  | Some r ->
      Hashtbl.fold (fun peer v acc -> (peer, v) :: acc) r []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.fold_left
           (fun acc (peer, v) ->
             match node_of_rank peer with
             | Some n when n = node -> acc +. v
             | _ -> acc)
           0.

(* ---------- planning ---------- *)

let spread _t ~loads =
  let alive = Array.to_list loads |> List.filter (fun nl -> nl.nl_alive) in
  match alive with
  | [] | [ _ ] -> (0., 0.)
  | _ ->
      let ls = List.map load_of alive in
      let mx = List.fold_left Float.max neg_infinity ls in
      let mn = List.fold_left Float.min infinity ls in
      let mean = List.fold_left ( +. ) 0. ls /. float_of_int (List.length ls) in
      (mx -. mn, mean)

let plan t ~loads ~candidates ~node_of_rank =
  let cfg = t.cfg in
  let n = Array.length loads in
  if n < 2 then []
  else begin
    let alive = Array.map (fun nl -> nl.nl_alive) loads in
    let alive_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 alive in
    if alive_count < 2 then []
    else begin
      (* working copy of node loads, updated as proposals are emitted *)
      let eff = Array.map load_of loads in
      let band_spread, mean = spread t ~loads in
      if band_spread <= cfg.Config.tolerance *. Float.max mean 1e-9 then []
      else begin
        let out_budget = Array.make n cfg.Config.move_budget in
        let in_budget = Array.make n cfg.Config.move_budget in
        (* sources: most loaded alive nodes first, node id breaks ties *)
        let sources =
          Array.to_list loads
          |> List.filter (fun nl -> nl.nl_alive)
          |> List.map (fun nl -> nl.nl_node)
          |> List.sort (fun a b ->
                 match compare eff.(b) eff.(a) with
                 | 0 -> compare a b
                 | c -> c)
        in
        let by_node src =
          List.filter (fun c -> c.cd_node = src && c.cd_load > 0.) candidates
          |> List.sort (fun a b ->
                 match compare b.cd_load a.cd_load with
                 | 0 -> compare a.cd_pid b.cd_pid
                 | c -> c)
        in
        let proposals = ref [] in
        List.iter
          (fun src ->
            List.iter
              (fun c ->
                if out_budget.(src) > 0 && eff.(src) > mean then begin
                  (* destinations clearing the repulsion bound *)
                  let dests = ref [] in
                  for d = 0 to n - 1 do
                    if
                      d <> src && alive.(d)
                      && in_budget.(d) > 0
                      && eff.(d) +. (c.cd_load *. (1. +. cfg.Config.tolerance))
                         <= eff.(src)
                    then dests := d :: !dests
                  done;
                  match !dests with
                  | [] -> ()
                  | ds ->
                      (* attraction first, then lower load, then node id *)
                      let scored =
                        List.map
                          (fun d ->
                            ( attraction t ~pid:c.cd_pid ~node:d ~node_of_rank,
                              d ))
                          ds
                      in
                      let best =
                        List.sort
                          (fun (a1, d1) (a2, d2) ->
                            match compare a2 a1 with
                            | 0 -> (
                                match compare eff.(d1) eff.(d2) with
                                | 0 -> compare d1 d2
                                | c -> c)
                            | c -> c)
                          scored
                        |> List.hd |> snd
                      in
                      proposals :=
                        {
                          pr_pid = c.cd_pid;
                          pr_from = src;
                          pr_to = best;
                          pr_gain = eff.(src) -. (eff.(best) +. c.cd_load);
                        }
                        :: !proposals;
                      eff.(src) <- eff.(src) -. c.cd_load;
                      eff.(best) <- eff.(best) +. c.cd_load;
                      out_budget.(src) <- out_budget.(src) - 1;
                      in_budget.(best) <- in_budget.(best) - 1
                end)
              (by_node src))
          sources;
        List.rev !proposals
      end
    end
  end
