(* Deterministic fault injection (the robustness direction of the
   ROADMAP): a seeded, scriptable plan of message loss, duplication,
   delay jitter, link partitions, transient stalls and crash-at-time
   events, applied to the simulated cluster's delivery and scheduling
   paths.

   Two design rules keep faulted runs both terminating and reproducible:

   - Loss of a SMALL message is modelled as link-level retransmission:
     the message arrives late (timeout + doubling backoff per lost
     transmission), never never.  Cluster programs poll msg_try_recv in
     busy loops with per-step tags; a silently dropped border row would
     wedge the whole grid, which is a transport bug, not the failure
     mode the paper studies.  Migration hops are different: the caller
     (the migration protocol) owns the retry policy, so [on_hop] reports
     the loss and lets it decide.

   - Every probabilistic decision draws from one RNG seeded by
     (plan seed, salt).  The draw order is fixed by the deterministic
     scheduler, so the same plan + seed reproduces the same fault
     schedule — and the same trace — byte for byte. *)

type partition = { pa : int; pb : int; p_from : float; p_until : float }
type stall = { s_node : int; s_at : float; s_for : float }
type crash = { c_node : int; c_at : float }

type plan = {
  f_seed : int;
  f_loss : float;
  f_dup : float;
  f_jitter_s : float;
  f_retransmit_s : float;
  f_partitions : partition list;
  f_stalls : stall list;
  f_crashes : crash list;
  f_crash_in_commit : float;
  f_store_lost : float;
  f_store_torn : float;
  f_store_flip : float;
}

let none =
  {
    f_seed = 1;
    f_loss = 0.0;
    f_dup = 0.0;
    f_jitter_s = 0.0;
    f_retransmit_s = 0.002;
    f_partitions = [];
    f_stalls = [];
    f_crashes = [];
    f_crash_in_commit = 0.0;
    f_store_lost = 0.0;
    f_store_torn = 0.0;
    f_store_flip = 0.0;
  }

let is_none p =
  p.f_loss = 0.0 && p.f_dup = 0.0 && p.f_jitter_s = 0.0
  && p.f_partitions = [] && p.f_stalls = [] && p.f_crashes = []
  && p.f_crash_in_commit = 0.0 && p.f_store_lost = 0.0
  && p.f_store_torn = 0.0 && p.f_store_flip = 0.0

let validate p =
  let prob name v =
    if v < 0.0 || v >= 1.0 then
      Error (Printf.sprintf "%s must be in [0,1), got %g" name v)
    else Ok ()
  in
  let nonneg name v =
    if v < 0.0 then Error (Printf.sprintf "%s must be >= 0, got %g" name v)
    else Ok ()
  in
  (* storage fates fire at most once per replica write, so unlike loss
     (which feeds a retransmission loop) probability 1.0 is safe — and
     useful for deterministic tests *)
  let store_prob name v =
    if v < 0.0 || v > 1.0 then
      Error (Printf.sprintf "%s must be in [0,1], got %g" name v)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "loss" p.f_loss in
  let* () = prob "dup" p.f_dup in
  (* 1.0 would abort every commit round forever (the protocol retries),
     the same livelock argument that bounds loss below 1 *)
  let* () = prob "crash_in_commit" p.f_crash_in_commit in
  let* () = nonneg "jitter" p.f_jitter_s in
  let* () = store_prob "store_lost" p.f_store_lost in
  let* () = store_prob "store_torn" p.f_store_torn in
  let* () = store_prob "store_flip" p.f_store_flip in
  let* () =
    if p.f_retransmit_s <= 0.0 then Error "retransmit must be > 0"
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc w ->
        let* () = acc in
        if w.p_until < w.p_from then
          Error
            (Printf.sprintf "partition %d-%d heals before it starts" w.pa
               w.pb)
        else Ok ())
      (Ok ()) p.f_partitions
  in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        nonneg "stall duration" s.s_for)
      (Ok ()) p.f_stalls
  in
  Ok p

(* ------------------------------------------------------------------ *)
(* Plan files                                                          *)
(* ------------------------------------------------------------------ *)

let plan_to_string p =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "seed %d\n" p.f_seed;
  if p.f_loss > 0.0 then add "loss %g\n" p.f_loss;
  if p.f_dup > 0.0 then add "dup %g\n" p.f_dup;
  if p.f_jitter_s > 0.0 then add "jitter %g\n" p.f_jitter_s;
  if p.f_retransmit_s <> none.f_retransmit_s then
    add "retransmit %g\n" p.f_retransmit_s;
  if p.f_crash_in_commit > 0.0 then
    add "crash_in_commit %g\n" p.f_crash_in_commit;
  if p.f_store_lost > 0.0 then add "store_lost %g\n" p.f_store_lost;
  if p.f_store_torn > 0.0 then add "store_torn %g\n" p.f_store_torn;
  if p.f_store_flip > 0.0 then add "store_flip %g\n" p.f_store_flip;
  List.iter
    (fun w ->
      if w.p_until = infinity then
        add "partition %d %d from %g until forever\n" w.pa w.pb w.p_from
      else
        add "partition %d %d from %g until %g\n" w.pa w.pb w.p_from
          w.p_until)
    (List.rev p.f_partitions);
  List.iter
    (fun s -> add "stall %d at %g for %g\n" s.s_node s.s_at s.s_for)
    (List.rev p.f_stalls);
  List.iter
    (fun c -> add "crash %d at %g\n" c.c_node c.c_at)
    (List.rev p.f_crashes);
  Buffer.contents buf

let parse_plan ?seed text =
  let ( let* ) = Result.bind in
  let err lineno fmt =
    Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s))
      fmt
  in
  let float_of lineno what s =
    match float_of_string_opt s with
    | Some v -> Ok v
    | None ->
      if String.equal s "forever" || String.equal s "inf" then Ok infinity
      else err lineno "bad %s %S" what s
  in
  let int_of lineno what s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> err lineno "bad %s %S" what s
  in
  (* Range checks happen HERE, per directive, so a bad value is reported
     with its line number; [validate] still guards plans built in code. *)
  let prob_at lineno name v =
    if v < 0.0 || v >= 1.0 then
      err lineno "%s must be in [0,1), got %g" name v
    else Ok v
  in
  let store_prob_at lineno name v =
    if v < 0.0 || v > 1.0 then
      err lineno "%s must be in [0,1], got %g" name v
    else Ok v
  in
  let nonneg_at lineno name v =
    if v < 0.0 then err lineno "%s must be >= 0, got %g" name v else Ok v
  in
  let lines = String.split_on_char '\n' text in
  let result =
    List.fold_left
      (fun acc line ->
        let* lineno, p = acc in
        let lineno = lineno + 1 in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun w -> w <> "")
        in
        let* p =
          match words with
          | [] -> Ok p
          | [ "seed"; n ] ->
            let* n = int_of lineno "seed" n in
            Ok { p with f_seed = n }
          | [ "loss"; v ] ->
            let* v = float_of lineno "loss" v in
            let* v = prob_at lineno "loss" v in
            Ok { p with f_loss = v }
          | [ "dup"; v ] ->
            let* v = float_of lineno "dup" v in
            let* v = prob_at lineno "dup" v in
            Ok { p with f_dup = v }
          | [ "jitter"; v ] ->
            let* v = float_of lineno "jitter" v in
            let* v = nonneg_at lineno "jitter" v in
            Ok { p with f_jitter_s = v }
          | [ "retransmit"; v ] ->
            let* v = float_of lineno "retransmit" v in
            let* v =
              if v <= 0.0 then err lineno "retransmit must be > 0, got %g" v
              else Ok v
            in
            Ok { p with f_retransmit_s = v }
          | [ "crash_in_commit"; v ] ->
            let* v = float_of lineno "crash_in_commit" v in
            let* v = prob_at lineno "crash_in_commit" v in
            Ok { p with f_crash_in_commit = v }
          | [ "store_lost"; v ] ->
            let* v = float_of lineno "store_lost" v in
            let* v = store_prob_at lineno "store_lost" v in
            Ok { p with f_store_lost = v }
          | [ "store_torn"; v ] ->
            let* v = float_of lineno "store_torn" v in
            let* v = store_prob_at lineno "store_torn" v in
            Ok { p with f_store_torn = v }
          | [ "store_flip"; v ] ->
            let* v = float_of lineno "store_flip" v in
            let* v = store_prob_at lineno "store_flip" v in
            Ok { p with f_store_flip = v }
          | [ "partition"; a; b; "from"; f; "until"; u ] ->
            let* a = int_of lineno "node" a in
            let* b = int_of lineno "node" b in
            let* f = float_of lineno "time" f in
            let* u = float_of lineno "time" u in
            let* () =
              if u < f then
                err lineno "partition %d-%d heals before it starts" a b
              else Ok ()
            in
            Ok
              {
                p with
                f_partitions =
                  { pa = a; pb = b; p_from = f; p_until = u }
                  :: p.f_partitions;
              }
          | [ "stall"; n; "at"; a; "for"; d ] ->
            let* n = int_of lineno "node" n in
            let* a = float_of lineno "time" a in
            let* d = float_of lineno "duration" d in
            let* d = nonneg_at lineno "stall duration" d in
            Ok
              {
                p with
                f_stalls =
                  { s_node = n; s_at = a; s_for = d } :: p.f_stalls;
              }
          | [ "crash"; n; "at"; a ] ->
            let* n = int_of lineno "node" n in
            let* a = float_of lineno "time" a in
            Ok
              {
                p with
                f_crashes = { c_node = n; c_at = a } :: p.f_crashes;
              }
          | directive :: _ -> err lineno "unknown directive %S" directive
        in
        Ok (lineno, p))
      (Ok (0, none))
      lines
  in
  let* _, p = result in
  let p = match seed with Some s -> { p with f_seed = s } | None -> p in
  validate p

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

type t = {
  t_plan : plan;
  t_rng : Random.State.t;
  (* scheduled events not yet fired (each fires exactly once) *)
  mutable t_stalls : stall list;
  mutable t_crashes : crash list;
  c_retransmits : Obs.Metrics.counter;
  c_msg_dup : Obs.Metrics.counter;
  c_msg_dropped : Obs.Metrics.counter;
  c_hop_lost : Obs.Metrics.counter;
  c_hop_dup : Obs.Metrics.counter;
  c_stalls : Obs.Metrics.counter;
  c_crashes : Obs.Metrics.counter;
  c_crash_in_commit : Obs.Metrics.counter;
  c_hb_dropped : Obs.Metrics.counter;
  c_store_lost : Obs.Metrics.counter;
  c_store_torn : Obs.Metrics.counter;
  c_store_flip : Obs.Metrics.counter;
}

let create ?(salt = 0) ?metrics plan =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  (* register outside the record literal: field expressions evaluate in
     unspecified order, and the registry renders in registration order *)
  let c_retransmits = Obs.Metrics.counter metrics "faults.retransmits" in
  let c_msg_dup = Obs.Metrics.counter metrics "faults.msg_dup" in
  let c_msg_dropped = Obs.Metrics.counter metrics "faults.msg_dropped" in
  let c_hop_lost = Obs.Metrics.counter metrics "faults.hop_lost" in
  let c_hop_dup = Obs.Metrics.counter metrics "faults.hop_dup" in
  let c_stalls = Obs.Metrics.counter metrics "faults.stalls" in
  let c_crashes = Obs.Metrics.counter metrics "faults.crashes" in
  let c_crash_in_commit =
    Obs.Metrics.counter metrics "faults.crash_in_commit"
  in
  let c_hb_dropped = Obs.Metrics.counter metrics "faults.hb_dropped" in
  let c_store_lost = Obs.Metrics.counter metrics "faults.store_lost" in
  let c_store_torn = Obs.Metrics.counter metrics "faults.store_torn" in
  let c_store_flip = Obs.Metrics.counter metrics "faults.store_flip" in
  {
    t_plan = plan;
    t_rng = Random.State.make [| plan.f_seed; salt; 0x6d6f6a61 (* "moja" *) |];
    t_stalls = plan.f_stalls;
    t_crashes = plan.f_crashes;
    c_retransmits;
    c_msg_dup;
    c_msg_dropped;
    c_hop_lost;
    c_hop_dup;
    c_stalls;
    c_crashes;
    c_crash_in_commit;
    c_hb_dropped;
    c_store_lost;
    c_store_torn;
    c_store_flip;
  }

let plan t = t.t_plan
let rng t = t.t_rng

let covers w a b =
  (w.pa = a && w.pb = b) || (w.pa = b && w.pb = a)

let partitioned t ~now ~a ~b =
  List.exists
    (fun w -> covers w a b && w.p_from <= now && now < w.p_until)
    t.t_plan.f_partitions

let heal_time t ~now ~a ~b =
  let heal =
    List.fold_left
      (fun acc w ->
        if covers w a b && w.p_from <= now && now < w.p_until then
          max acc w.p_until
        else acc)
      neg_infinity t.t_plan.f_partitions
  in
  if heal = neg_infinity || heal = infinity then None else Some heal

type delivery = {
  d_dropped : bool;
  d_delay_s : float;
  d_duplicate : bool;
  d_retransmits : int;
}

let no_fault =
  { d_dropped = false; d_delay_s = 0.0; d_duplicate = false;
    d_retransmits = 0 }

(* Consecutive lost transmissions of one message cost timeout, 2x
   timeout, 4x, ... — a sender-side exponential backoff.  The cap is a
   safety net: at 10 % loss the chance of hitting it is 10^-32. *)
let max_retransmits = 32

let on_message t ~now ~src ~dst =
  let p = t.t_plan in
  if src = dst || src < 0 || dst < 0 || is_none p then no_fault
  else begin
    (* a partition at send time delays delivery until the link heals *)
    let part_delay, part_dropped =
      if partitioned t ~now ~a:src ~b:dst then
        match heal_time t ~now ~a:src ~b:dst with
        | Some h -> h -. now, false
        | None -> 0.0, true (* never heals: undeliverable *)
      else 0.0, false
    in
    if part_dropped then begin
      Obs.Metrics.incr t.c_msg_dropped;
      { no_fault with d_dropped = true }
    end
    else begin
      let retrans = ref 0 in
      let delay = ref part_delay in
      if p.f_loss > 0.0 then begin
        let timeout = ref p.f_retransmit_s in
        while
          !retrans < max_retransmits
          && Random.State.float t.t_rng 1.0 < p.f_loss
        do
          delay := !delay +. !timeout;
          timeout := !timeout *. 2.0;
          incr retrans
        done;
        Obs.Metrics.incr ~by:!retrans t.c_retransmits
      end;
      if p.f_jitter_s > 0.0 then
        delay := !delay +. Random.State.float t.t_rng p.f_jitter_s;
      let duplicate =
        p.f_dup > 0.0 && Random.State.float t.t_rng 1.0 < p.f_dup
      in
      if duplicate then Obs.Metrics.incr t.c_msg_dup;
      if !retrans >= max_retransmits then begin
        Obs.Metrics.incr t.c_msg_dropped;
        { no_fault with d_dropped = true }
      end
      else
        {
          d_dropped = false;
          d_delay_s = !delay;
          d_duplicate = duplicate;
          d_retransmits = !retrans;
        }
    end
  end

let on_hop t ~now ~src ~dst =
  let p = t.t_plan in
  if src = dst || is_none p then `Deliver
  else if partitioned t ~now ~a:src ~b:dst then begin
    Obs.Metrics.incr t.c_hop_lost;
    `Partitioned
  end
  else if p.f_loss > 0.0 && Random.State.float t.t_rng 1.0 < p.f_loss
  then begin
    Obs.Metrics.incr t.c_hop_lost;
    `Lost
  end
  else `Deliver

(* Heartbeats are fire-and-forget: unlike application messages they are
   NOT retransmitted on loss — a dropped beat is silence, which is
   exactly the signal the failure detector interprets.  A partition at
   emission time drops the beat outright (partitions heal for queued
   application traffic, but a heartbeat that arrives after the suspicion
   window is as good as lost). *)
let on_heartbeat t ~now ~src ~dst =
  let p = t.t_plan in
  if src = dst || is_none p then `Deliver 0.0
  else if partitioned t ~now ~a:src ~b:dst then begin
    Obs.Metrics.incr t.c_hb_dropped;
    `Drop
  end
  else if p.f_loss > 0.0 && Random.State.float t.t_rng 1.0 < p.f_loss
  then begin
    Obs.Metrics.incr t.c_hb_dropped;
    `Drop
  end
  else if p.f_jitter_s > 0.0 then
    `Deliver (Random.State.float t.t_rng p.f_jitter_s)
  else `Deliver 0.0

(* Fate of one replica write in the checkpoint store.  [`Torn frac]
   persists only a prefix of the data (a torn write: the node died or
   the disk filled mid-write); [`Flip frac] persists the data with one
   byte corrupted at the given relative position.  Both leave the stored
   digest describing the ORIGINAL bytes, so a digest-verified read
   detects the damage.  At most one draw per configured class, so plans
   without storage faults consume no randomness here. *)
let on_store_write t =
  let p = t.t_plan in
  if p.f_store_lost = 0.0 && p.f_store_torn = 0.0 && p.f_store_flip = 0.0
  then `Ok
  else begin
    let draw pr = pr > 0.0 && Random.State.float t.t_rng 1.0 < pr in
    if draw p.f_store_lost then begin
      Obs.Metrics.incr t.c_store_lost;
      `Lost
    end
    else if draw p.f_store_torn then begin
      Obs.Metrics.incr t.c_store_torn;
      `Torn (0.1 +. Random.State.float t.t_rng 0.8)
    end
    else if draw p.f_store_flip then begin
      Obs.Metrics.incr t.c_store_flip;
      `Flip (Random.State.float t.t_rng 1.0)
    end
    else `Ok
  end

let dup_hop t =
  let p = t.t_plan in
  if p.f_dup > 0.0 && Random.State.float t.t_rng 1.0 < p.f_dup then begin
    Obs.Metrics.incr t.c_hop_dup;
    true
  end
  else false

(* Should one participant of the commit round in flight crash between
   its prepare-ack and the commit receipt?  One draw per protocol round
   (after all acks are in), like [dup_hop]'s one draw per delivered
   image, so fault-free plans consume no randomness. *)
let crash_in_commit t =
  let p = t.t_plan in
  if
    p.f_crash_in_commit > 0.0
    && Random.State.float t.t_rng 1.0 < p.f_crash_in_commit
  then begin
    Obs.Metrics.incr t.c_crash_in_commit;
    true
  end
  else false

let take_stall t ~node ~now =
  let due, rest =
    List.partition
      (fun s -> s.s_node = node && s.s_at <= now)
      t.t_stalls
  in
  match due with
  | [] -> None
  | _ ->
    t.t_stalls <- rest;
    Obs.Metrics.incr ~by:(List.length due) t.c_stalls;
    Some (List.fold_left (fun acc s -> acc +. s.s_for) 0.0 due)

let take_crash t ~node ~now =
  let due, rest =
    List.partition
      (fun c -> c.c_node = node && c.c_at <= now)
      t.t_crashes
  in
  match due with
  | [] -> false
  | _ ->
    t.t_crashes <- rest;
    Obs.Metrics.incr ~by:(List.length due) t.c_crashes;
    true
