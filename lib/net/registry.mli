(** The process registry: location-transparent logical addresses over
    mobile ranks (ROADMAP item 1).

    A logical address (laddr) names a long-lived service process
    independently of the rank currently serving it.  When a registered
    service migrates the cluster rebinds the laddr to the successor's
    fresh rank and installs a bounded-TTL {e forwarder} on the vacated
    rank: sends still resolving there are relayed one extra hop and the
    sender is owed a [Recipient_moved] notice so it rebinds; a send
    arriving after the TTL gets a typed {!Expired} — never a silent
    drop.  Forwarding chains left by repeated migration (A→B→C) are
    path-compressed on both rebind and resolve, so each sender pays the
    chain length at most once.

    Epoch fencing is orthogonal: the registry moves ranks, the cluster
    still fences stale incarnations at every send. *)

type forwarder = {
  fw_from : int;  (** the vacated rank *)
  mutable fw_next : int;  (** next hop (path-compressed) *)
  fw_expires : float;  (** absolute simulated time *)
  mutable fw_relayed : int;  (** messages this forwarder relayed *)
}

type t

val create : unit -> t

val register : t -> rank:int -> int
(** Bind a fresh laddr (sequential from 1) to [rank]. *)

val lookup : t -> int -> int option
(** Authoritative current rank of a laddr. *)

val laddr_of_rank : t -> int -> int option
(** The laddr currently bound to [rank], if it serves one (how the
    migration path recognises a registered service). *)

val forwarder_of : t -> int -> forwarder option

val rebind : t -> laddr:int -> new_rank:int -> now:float -> ttl:float -> unit
(** Point [laddr] at [new_rank]; the old rank forwards until
    [now +. ttl].  Chains through the old rank are collapsed. *)

type resolution =
  | Direct of int  (** the rank is current; send straight to it *)
  | Forwarded of { final : int; hops : int }
      (** the rank was vacated; a live forwarder chain of [hops] links
          leads to [final] — relay there and notify the sender *)
  | Expired of int
      (** the rank's forwarder TTL has passed: typed error, the caller
          must re-resolve authoritatively *)

val resolve : t -> now:float -> int -> resolution
(** Follow (and path-compress) the forwarder chain from a possibly
    stale rank. *)

val expire : t -> now:float -> int
(** Drop forwarders past their TTL; returns how many. *)

val service_count : t -> int
val forwarder_count : t -> int
val registered : t -> int
val moves : t -> int

val forwarded : t -> int
(** Total relays performed by every forwarder, ever. *)

val expired_count : t -> int
val resolves : t -> int
val compressions : t -> int
