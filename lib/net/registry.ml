(* The process registry: stable logical addresses over mobile ranks
   (ROADMAP item 1; cf. the Milanés et al. survey's "communication
   redirection" and DCESH's location-transparent computations).

   A LOGICAL ADDRESS (laddr) names a long-lived service process
   independently of where it currently runs.  The registry maps each
   laddr to the rank currently serving it; when a registered service
   migrates, the cluster allocates the successor a FRESH rank, rebinds
   the laddr, and installs a bounded-TTL FORWARDER on the old rank.  A
   send that still resolves to the old rank is relayed one hop to the
   new one (paying the extra network latency) and the sender is owed a
   Recipient_moved notice so it rebinds; once every sender has rebound
   the forwarder goes quiet and may expire.  A send that arrives AFTER
   expiry gets a typed [`Expired] — never a silent drop — and the
   caller re-resolves authoritatively.

   Forwarding chains (A -> B -> C after a double migration) are
   path-compressed on both sides: [rebind] re-points every forwarder
   whose next hop was the old rank, and [resolve] re-points the entry
   forwarder at the final rank it just walked to.  Each message
   therefore pays at most the chain length ONCE; afterwards the chain
   is flat.

   Epoch fencing is orthogonal and unchanged: the registry moves
   ranks around, the cluster still stamps every send with the sender's
   incarnation epoch and fences stale ones.  The laddr of a service
   survives resurrection exactly because it names (pid lineage +
   epoch), not a mailbox. *)

type forwarder = {
  fw_from : int; (* the vacated rank *)
  mutable fw_next : int; (* next hop (path-compressed) *)
  fw_expires : float; (* absolute simulated time *)
  mutable fw_relayed : int; (* messages this forwarder relayed *)
}

type t = {
  bindings : (int, int ref) Hashtbl.t; (* laddr -> current rank *)
  by_rank : (int, int) Hashtbl.t; (* current rank -> laddr *)
  forwarders : (int, forwarder) Hashtbl.t; (* vacated rank -> forwarder *)
  mutable next_laddr : int;
  (* counters (mirrored into the cluster's Obs registry) *)
  mutable registered : int;
  mutable moves : int;
  mutable forwarded : int;
  mutable expired : int;
  mutable resolves : int;
  mutable compressions : int;
}

let create () =
  {
    bindings = Hashtbl.create 8;
    by_rank = Hashtbl.create 8;
    forwarders = Hashtbl.create 8;
    next_laddr = 1;
    registered = 0;
    moves = 0;
    forwarded = 0;
    expired = 0;
    resolves = 0;
    compressions = 0;
  }

let register t ~rank =
  let laddr = t.next_laddr in
  t.next_laddr <- t.next_laddr + 1;
  Hashtbl.replace t.bindings laddr (ref rank);
  Hashtbl.replace t.by_rank rank laddr;
  t.registered <- t.registered + 1;
  laddr

let lookup t laddr =
  t.resolves <- t.resolves + 1;
  Option.map ( ! ) (Hashtbl.find_opt t.bindings laddr)

let laddr_of_rank t rank = Hashtbl.find_opt t.by_rank rank

let forwarder_of t rank = Hashtbl.find_opt t.forwarders rank

(* Rebind [laddr] to [new_rank]; the old rank gets a forwarder that
   relays until [now + ttl].  Existing forwarders pointing AT the old
   rank are re-pointed at the new one (chain collapse on the write
   side: after A->B->C, A forwards straight to C). *)
let rebind t ~laddr ~new_rank ~now ~ttl =
  match Hashtbl.find_opt t.bindings laddr with
  | None -> invalid_arg "Registry.rebind: unknown laddr"
  | Some cur ->
    let old_rank = !cur in
    if old_rank <> new_rank then begin
      cur := new_rank;
      Hashtbl.remove t.by_rank old_rank;
      Hashtbl.replace t.by_rank new_rank laddr;
      Hashtbl.replace t.forwarders old_rank
        { fw_from = old_rank; fw_next = new_rank; fw_expires = now +. ttl;
          fw_relayed = 0 };
      Hashtbl.iter
        (fun _ fw ->
          if fw.fw_next = old_rank then begin
            fw.fw_next <- new_rank;
            t.compressions <- t.compressions + 1
          end)
        t.forwarders;
      t.moves <- t.moves + 1
    end

type resolution =
  | Direct of int
  | Forwarded of { final : int; hops : int }
  | Expired of int

(* Follow the forwarder chain from a (possibly stale) rank.  Any LIVE
   forwarder on the walk relays; an expired one ends the walk with a
   typed error.  The entry forwarder is path-compressed to the final
   rank so the next sender through it pays one hop. *)
let resolve t ~now rank =
  match Hashtbl.find_opt t.forwarders rank with
  | None -> Direct rank
  | Some first ->
    if now > first.fw_expires then begin
      t.expired <- t.expired + 1;
      Expired rank
    end
    else begin
      let rec walk r hops =
        match Hashtbl.find_opt t.forwarders r with
        | Some fw when now <= fw.fw_expires ->
          fw.fw_relayed <- fw.fw_relayed + 1;
          walk fw.fw_next (hops + 1)
        | Some _ | None -> (r, hops)
      in
      let final, hops = walk rank 0 in
      if first.fw_next <> final then begin
        first.fw_next <- final;
        t.compressions <- t.compressions + 1
      end;
      t.forwarded <- t.forwarded + 1;
      Forwarded { final; hops }
    end

(* Drop forwarders whose TTL has passed (housekeeping; resolution
   through one already fails typed). *)
let expire t ~now =
  let dead =
    Hashtbl.fold
      (fun r fw acc -> if now > fw.fw_expires then r :: acc else acc)
      t.forwarders []
  in
  List.iter (Hashtbl.remove t.forwarders) dead;
  List.length dead

let service_count t = Hashtbl.length t.bindings
let forwarder_count t = Hashtbl.length t.forwarders
let registered t = t.registered
let moves t = t.moves
let forwarded t = t.forwarded
let expired_count t = t.expired
let resolves t = t.resolves
let compressions t = t.compressions
