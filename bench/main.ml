(* The benchmark harness: regenerates every result in the paper's
   evaluation (Section 5 and Figures 1-2).  See DESIGN.md section 3 for
   the experiment index and EXPERIMENTS.md for paper-vs-measured records.

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe e1 e3 f2   # a subset

   Each experiment prints the paper's reported numbers next to ours and a
   shape verdict.  Absolute times differ by construction (their testbed
   is a 2007 cluster of 700 MHz machines; our substrate is a simulator on
   modern hardware), so the criteria are the SHAPES the paper's
   conclusions rest on: who dominates, by what factor, what stays flat
   and what grows. *)

open Runtime

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let verdict name ok =
  Printf.printf "  shape check: %-52s %s\n" name
    (if ok then "[PASS]" else "[FAIL]")

(* nanosecond-resolution monotonic clock (bechamel's C stub); seconds *)
let now_s () = Bechamel.Toolkit.Monotonic_clock.get () /. 1e9

let wall f =
  let t0 = now_s () in
  let r = f () in
  r, now_s () -. t0

(* ------------------------------------------------------------------ *)
(* Bechamel helper: ns/run estimate for a thunk                        *)
(* ------------------------------------------------------------------ *)

let bechamel_ns ?(quota = 0.3) name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:false
      ~quota:(Time.second quota) ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ r ] -> (
    match Analyze.OLS.estimates r with
    | Some [ ns ] -> ns
    | Some _ | None -> nan)
  | _ -> nan

(* ================================================================== *)
(* E1: whole-process migration time (paper: 4 s for a 1 MB heap with   *)
(* FIR recompilation, ~10 % network transfer; binary migration < 1 s,  *)
(* ~30 % transfer)                                                     *)
(* ================================================================== *)

(* The migrating workload: an application-sized program whose live state
   is a float array of the requested size.  [variants] stencil-kernel
   families pad the code to the footprint of a real application (a few
   thousand FIR nodes — the scale the paper's recompilation time
   implies); each variant is invoked once before the migration so dead-
   code elimination keeps it. *)
let variant_source v =
  Printf.sprintf
    {|
float cell_update%d(float *u, int i, int j, int c) {
  float s = u[(i - 1) * c + j] + u[(i + 1) * c + j];
  s = s + u[i * c + j - 1] * %d.0;
  s = s + u[i * c + j + 1];
  return s * 0.25;
}
void relax%d(float *u, float *un, int rows, int c) {
  int i; int j;
  for (i = 1; i < rows - 1; i = i + 1) {
    for (j = 1; j < c - 1; j = j + 1) {
      un[i * c + j] = cell_update%d(u, i, j, c);
    }
  }
  for (i = 1; i < rows - 1; i = i + 1) {
    for (j = 1; j < c - 1; j = j + 1) {
      u[i * c + j] = un[i * c + j] + (float)%d * 0.0;
    }
  }
}
float row_sum%d(float *u, int row, int c) {
  float s = %d.0 * 0.0;
  int j;
  for (j = 0; j < c; j = j + 1) s = s + u[row * c + j];
  return s;
}
|}
    v v v v v v v

let migrator_source ?(variants = 6) ~cells () =
  let body = Buffer.create 8192 in
  for v = 0 to variants - 1 do
    Buffer.add_string body (variant_source v)
  done;
  let calls = Buffer.create 512 in
  for v = 0 to variants - 1 do
    Printf.ksprintf (Buffer.add_string calls)
      "  relax%d(warm, warm2, 4, 8);
  acc = acc + row_sum%d(warm, 1, 8);
"
      v v
  done;
  Buffer.contents body
  ^ Printf.sprintf
      {|
int checksum(float *data, int n) {
  float s = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1) s = s + data[i];
  return (int)(s * 16.0);
}
int main() {
  float *warm = alloc_float(32);
  float *warm2 = alloc_float(32);
  float acc = 0.0;
%s
  int n = %d;
  float *data = alloc_float(n);
  int i;
  for (i = 0; i < n; i = i + 1) {
    data[i] = (float)(i %% 97) / 97.0;
  }
  migrate("mcc://destination");
  return checksum(data, n) + (int)acc;
}
|}
      (Buffer.contents calls) cells

let run_to_migration fir =
  let proc = Vm.Process.create fir in
  match Vm.Interp.run proc with
  | Vm.Process.Migrating _ -> proc
  | _ -> failwith "bench: migrator did not reach its migration point"

let e1 () =
  section "E1: whole-process migration (paper Section 5, paragraph 1)";
  Printf.printf
    "paper: 1 MB heap, untrusted (FIR+recompile): 4 s total, ~10%% \
     transfer\n";
  Printf.printf
    "paper: 1 MB heap, trusted same-arch (binary): <1 s total, ~30%% \
     transfer\n\n";
  (* Effective application-level throughput, calibrated from the paper:
     its 1 MB-heap FIR migration spends ~10 % of 4 s (~0.4 s) in network
     transfer for a ~1.2 MB image, i.e. ~24 Mbps end-to-end over their
     100 Mbps Ethernet (connection setup + streaming overheads included).
     The raw wire rate stays 100 Mbps elsewhere in the repository. *)
  let net = Net.Simnet.create ~bandwidth_mbps:24.0 () in
  let arch = Vm.Arch.cisc32 in
  let clock = float_of_int arch.Vm.Arch.clock_mhz *. 1e6 in
  (* every delivery goes through the instrumented migration server, so
     the table below is read back out of its metrics registry rather
     than hand-tallied *)
  let server_fir = Migrate.Server.(create_cfg Config.default arch) in
  let server_bin =
    Migrate.Server.(create_cfg { Config.default with trusted = true } arch)
  in
  Printf.printf "  %-10s %-6s %-10s %-10s %-10s %-10s %-8s %s\n" "heap"
    "path" "image" "pack(s)" "xfer(s)" "compile(s)" "total" "xfer%";
  let results = ref [] in
  List.iter
    (fun kb ->
      let cells = kb * 1024 / 8 in
      let fir =
        match Minic.Driver.compile (migrator_source ~cells ()) with
        | Ok fir -> fir
        | Error e -> failwith (Minic.Driver.error_to_string e)
      in
      List.iter
        (fun binary ->
          let proc = run_to_migration fir in
          let (packed : Migrate.Pack.packed), pack_wall =
            wall (fun () -> Migrate.Pack.pack_request ~with_binary:binary proc)
          in
          ignore pack_wall;
          let bytes = String.length packed.Migrate.Pack.p_bytes in
          let heap_cells = Heap.used_cells proc.Vm.Process.heap in
          let pack_s =
            float_of_int (heap_cells * arch.Vm.Arch.cycles Vm.Arch.Mem)
            /. clock
          in
          let xfer_s = Net.Simnet.transfer_seconds net bytes in
          let server = if binary then server_bin else server_fir in
          let outcome, unpack_wall =
            wall (fun () ->
                Migrate.Server.handle server packed.Migrate.Pack.p_bytes)
          in
          ignore unpack_wall;
          let compile_s =
            match outcome with
            | Ok o ->
              float_of_int o.Migrate.Server.o_costs.Migrate.Pack.u_compile_cycles
              /. clock
            | Error m -> failwith ("bench: unpack failed: " ^ m)
          in
          let restore_s =
            float_of_int (heap_cells * arch.Vm.Arch.cycles Vm.Arch.Mem)
            /. clock
          in
          let total = pack_s +. xfer_s +. compile_s +. restore_s in
          let frac = 100.0 *. xfer_s /. total in
          Printf.printf "  %-10s %-6s %-10d %-10.4f %-10.4f %-10.4f %-8.3f %.0f%%\n"
            (Printf.sprintf "%d KB" kb)
            (if binary then "binary" else "FIR")
            bytes pack_s xfer_s compile_s total frac;
          results := (kb, binary, total, frac) :: !results)
        [ false; true ])
    [ 64; 256; 1024; 4096 ];
  let find kb binary =
    let _, _, total, frac =
      List.find (fun (k, b, _, _) -> k = kb && b = binary) !results
    in
    total, frac
  in
  let fir_total, fir_frac = find 1024 false in
  let bin_total, bin_frac = find 1024 true in
  print_newline ();
  (* totals straight out of the server metrics registries *)
  let totals label srv =
    let m = Migrate.Server.metrics srv in
    let c name = Obs.Metrics.counter_value m name in
    Printf.printf
      "  %-6s path (server registry): %d accepted, %d rejected, %d \
       recompilations, %d bytes received\n"
      label (c "server.accepted") (c "server.rejected")
      (c "server.recompilations") (c "server.bytes_received")
  in
  totals "FIR" server_fir;
  totals "binary" server_bin;
  print_newline ();
  verdict "recompilation dominates FIR migration (xfer <= 15%)"
    (fir_frac <= 15.0);
  verdict "binary path >= 4x faster than FIR path"
    (bin_total *. 4.0 <= fir_total);
  verdict "transfer fraction rises on the binary path"
    (bin_frac > fir_frac);
  (* wall-clock micro-benchmarks of the real pack/unpack code *)
  let fir_1mb =
    match Minic.Driver.compile (migrator_source ~cells:(1024 * 128) ()) with
    | Ok fir -> fir
    | Error _ -> assert false
  in
  let proc = run_to_migration fir_1mb in
  let pack_ns =
    bechamel_ns "pack(1MB)" (fun () ->
        ignore (Migrate.Pack.pack_request ~with_binary:false proc))
  in
  let packed = Migrate.Pack.pack_request ~with_binary:false proc in
  let unpack_ns =
    bechamel_ns "unpack(1MB)" (fun () ->
        match
          Migrate.Pack.unpack ~arch ~trusted:false packed.Migrate.Pack.p_bytes
        with
        | Ok _ -> ()
        | Error _ -> ())
  in
  Printf.printf
    "\n  host wall-clock (bechamel): pack(1MB) = %.2f ms, \
     verify+unpack+recompile(1MB) = %.2f ms\n"
    (pack_ns /. 1e6) (unpack_ns /. 1e6)

(* ================================================================== *)
(* E1c: repeated migration with the recompilation cache                *)
(* ================================================================== *)

(* The same 1 MB grid process bounces A -> B -> A -> B ... ten times.
   Without the cache every hop pays the full verify + typecheck + codegen
   bill (the ~90 % of E1's FIR migration).  With per-node caches only the
   first delivery to each node compiles; every later hop is a digest hit
   that charges transfer + stub link.  Structural heap verification still
   runs on every hop — it is per-image state and never cached. *)
let e1c () =
  section "E1c: repeated migration, recompilation cache off vs on";
  let net = Net.Simnet.create ~bandwidth_mbps:24.0 () in
  let arch = Vm.Arch.cisc32 in
  let clock = float_of_int arch.Vm.Arch.clock_mhz *. 1e6 in
  let fir =
    match Minic.Driver.compile (migrator_source ~cells:(1024 * 128) ()) with
    | Ok fir -> fir
    | Error e -> failwith (Minic.Driver.error_to_string e)
  in
  let proc = run_to_migration fir in
  let packed = Migrate.Pack.pack_request ~with_binary:false proc in
  let bytes = String.length packed.Migrate.Pack.p_bytes in
  let heap_cells = Heap.used_cells proc.Vm.Process.heap in
  let mem_s =
    float_of_int (heap_cells * arch.Vm.Arch.cycles Vm.Arch.Mem) /. clock
  in
  let xfer_s = Net.Simnet.transfer_seconds net bytes in
  let hops = 10 in
  (* one unpack on the destination of hop [i]; returns the simulated
     migration total for that hop *)
  let deliver ?cache () =
    match
      Migrate.Pack.unpack ~trusted:false ?cache ~arch
        packed.Migrate.Pack.p_bytes
    with
    | Ok (_, _, _, costs) ->
      let compile_s =
        float_of_int costs.Migrate.Pack.u_compile_cycles /. clock
      in
      (* pack + transfer + (compile | link) + heap restore *)
      mem_s +. xfer_s +. compile_s +. mem_s, costs.Migrate.Pack.u_cache_hit
    | Error m -> failwith ("bench: unpack failed: " ^ m)
  in
  let bounce ~cached =
    let cache_a, cache_b =
      if cached then
        ( Some (Migrate.Codecache.create ~capacity:16 ()),
          Some (Migrate.Codecache.create ~capacity:16 ()) )
      else None, None
    in
    ( List.init hops (fun i ->
          deliver ?cache:(if i mod 2 = 0 then cache_b else cache_a) ()),
      List.filter_map (fun c -> c) [ cache_a; cache_b ] )
  in
  let off, _ = bounce ~cached:false in
  let on, caches = bounce ~cached:true in
  Printf.printf "  %-5s %-14s %-14s %s\n" "hop" "no-cache(s)" "cached(s)"
    "path";
  List.iteri
    (fun i ((t_off, _), (t_on, hit)) ->
      Printf.printf "  %-5d %-14.4f %-14.4f %s\n" (i + 1) t_off t_on
        (if hit then "cache hit (link only)" else "compile"))
    (List.combine off on);
  let cold = fst (List.hd on) in
  let warm = fst (List.nth on (hops - 1)) in
  let total_off = List.fold_left (fun a (t, _) -> a +. t) 0.0 off in
  let total_on = List.fold_left (fun a (t, _) -> a +. t) 0.0 on in
  (* hit/lookup totals come from the per-node cache registries, not from
     re-tallying the hop list *)
  let registry_sum name =
    List.fold_left
      (fun acc c ->
        acc
        + Obs.Metrics.counter_value (Migrate.Codecache.metrics c) name)
      0 caches
  in
  let hits = registry_sum "codecache.hits" in
  let lookups = registry_sum "codecache.lookups" in
  Printf.printf
    "\n  cold %.3f s, warm %.3f s (%.0f%% of cold); 10-hop total %.2f s \
     -> %.2f s; %d/%d hits (registry: %d lookups)\n"
    cold warm
    (100.0 *. warm /. cold)
    total_off total_on hits lookups lookups;
  verdict "first migration pays the full E1 cost (no hit)"
    (not (snd (List.hd on)) && cold = fst (List.hd off));
  verdict "warm migration < 25% of cold" (warm < 0.25 *. cold);
  verdict "all hops after the two node warm-ups hit" (hits = hops - 2)

(* ================================================================== *)
(* E1d: delta migration — warm hops ship only the dirty window         *)
(* ================================================================== *)

(* The E1 migrator, made to hop twice: between migrations it overwrites
   a [window]-cell slice of its [cells]-cell array, so the second pack's
   dirty set is a small fraction of the heap and the v7 delta encoding
   can ship just that. *)
let delta_migrator_source ?(variants = 6) ~cells ~hops ~window () =
  let body = Buffer.create 8192 in
  for v = 0 to variants - 1 do
    Buffer.add_string body (variant_source v)
  done;
  let calls = Buffer.create 512 in
  for v = 0 to variants - 1 do
    Printf.ksprintf (Buffer.add_string calls)
      "  relax%d(warm, warm2, 4, 8);
  acc = acc + row_sum%d(warm, 1, 8);
"
      v v
  done;
  Buffer.contents body
  ^ Printf.sprintf
      {|
int checksum(float *data, int n) {
  float s = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1) s = s + data[i];
  return (int)(s * 16.0);
}
int main() {
  float *warm = alloc_float(32);
  float *warm2 = alloc_float(32);
  float acc = 0.0;
%s
  int n = %d;
  float *data = alloc_float(n);
  int i;
  for (i = 0; i < n; i = i + 1) {
    data[i] = (float)(i %% 97) / 97.0;
  }
  int hop;
  for (hop = 0; hop < %d; hop = hop + 1) {
    for (i = 0; i < %d; i = i + 1) {
      data[(hop * %d + i) %% n] = data[(hop * %d + i) %% n] + 1.0;
    }
    migrate("mcc://destination");
  }
  return checksum(data, n) + (int)acc;
}
|}
      (Buffer.contents calls) cells hops window window window

let e1d () =
  section "E1d: delta migration (dirty-window deltas over a baseline)";
  Printf.printf
    "1 MB heap bounces; between hops the program rewrites a %d-cell \
     window\n(~1.6%% of the array).  Warm hops ship a v7 delta over the \
     receiver's\nretained baseline; a receiver without the baseline \
     forces a full re-ship.\n\n"
    2048;
  let net = Net.Simnet.create ~bandwidth_mbps:24.0 () in
  let arch = Vm.Arch.cisc32 in
  let clock = float_of_int arch.Vm.Arch.clock_mhz *. 1e6 in
  let cells = 1024 * 128 in
  let fir =
    match
      Minic.Driver.compile
        (delta_migrator_source ~cells ~hops:2 ~window:2048 ())
    with
    | Ok fir -> fir
    | Error e -> failwith (Minic.Driver.error_to_string e)
  in
  let proc = run_to_migration fir in
  (* two instrumented receivers, both with recompilation caches (the
     E1c warm path): one retains delta baselines, one cannot *)
  let mk_server baseline_cache =
    Migrate.Server.(
      create_cfg
        { Config.default with
          cache = Some (Migrate.Codecache.create ~capacity:16 ());
          baseline_cache }
        arch)
  in
  let recv = mk_server 4 in
  let recv_cold = mk_server 0 in
  let mem_s () =
    float_of_int
      (Heap.used_cells proc.Vm.Process.heap
      * arch.Vm.Arch.cycles Vm.Arch.Mem)
    /. clock
  in
  let compile_s outcome =
    match outcome with
    | Ok o ->
      float_of_int o.Migrate.Server.o_costs.Migrate.Pack.u_compile_cycles
      /. clock
    | Error m -> failwith ("bench: delivery failed: " ^ m)
  in
  (* hop 1: cold — the full image travels and becomes the baseline *)
  let packed1 = Migrate.Pack.pack_request ~with_binary:false proc in
  let digest1 = Migrate.Wire.image_digest packed1.Migrate.Pack.p_image in
  let full1 = String.length packed1.Migrate.Pack.p_bytes in
  let pack1_s = mem_s () in
  let restore_s = mem_s () in
  let xfer1_s = Net.Simnet.transfer_seconds net full1 in
  let compile1_s =
    compile_s (Migrate.Server.handle recv packed1.Migrate.Pack.p_bytes)
  in
  (* the baseline-less receiver also sees hop 1 (warming its CODE cache
     but retaining no image) *)
  ignore (Migrate.Server.handle recv_cold packed1.Migrate.Pack.p_bytes);
  let total1 = pack1_s +. xfer1_s +. compile1_s +. restore_s in
  (* the source keeps running (failed-migration semantics), mutates its
     window, and reaches the next migration point *)
  Vm.Process.migration_failed proc;
  (match Vm.Interp.run proc with
  | Vm.Process.Migrating _ -> ()
  | _ -> failwith "bench: migrator did not reach its second hop");
  let packed2 = Migrate.Pack.pack_request ~with_binary:false proc in
  let full2 = String.length packed2.Migrate.Pack.p_bytes in
  (* hop 2, warm: the receiver still holds the hop-1 baseline *)
  if not (Migrate.Server.has_baseline recv digest1) then
    failwith "bench: receiver lost the baseline";
  let delta_bytes, stats =
    match
      Migrate.Pack.delta ~baseline:packed1.Migrate.Pack.p_image
        ~base_digest:digest1 packed2
    with
    | Some r -> r
    | None -> failwith "bench: delta encoding impossible"
  in
  let dbytes = String.length delta_bytes in
  let pack2_s =
    float_of_int
      (((stats.Migrate.Wire.ds_blocks * Heap.header_cells)
       + stats.Migrate.Wire.ds_shipped_cells)
      * arch.Vm.Arch.cycles Vm.Arch.Mem)
    /. clock
  in
  let xfer2_s = Net.Simnet.transfer_seconds net dbytes in
  let compile2_s = compile_s (Migrate.Server.handle recv delta_bytes) in
  let total2 = pack2_s +. xfer2_s +. compile2_s +. restore_s in
  (* hop 2 against the baseline-less receiver: the delta is rejected as
     unknown-baseline and the sender re-ships the full image *)
  (match Migrate.Server.handle recv_cold delta_bytes with
  | Error m when Migrate.Server.is_unknown_baseline m -> ()
  | Ok _ -> failwith "bench: baseline-less receiver accepted a delta"
  | Error m -> failwith ("bench: unexpected rejection: " ^ m));
  let fullpack2_s = mem_s () in
  let xfer2f_s = Net.Simnet.transfer_seconds net full2 in
  let compile2f_s =
    compile_s (Migrate.Server.handle recv_cold packed2.Migrate.Pack.p_bytes)
  in
  let total3 =
    pack2_s +. xfer2_s +. fullpack2_s +. xfer2f_s +. compile2f_s
    +. restore_s
  in
  (* byte columns read back out of the receivers' metrics registries *)
  let c srv name =
    Obs.Metrics.counter_value (Migrate.Server.metrics srv) name
  in
  let warm_bytes = c recv "migrate.bytes_delta" in
  let fallback_bytes =
    c recv_cold "migrate.bytes_delta"
    + (c recv_cold "migrate.bytes_full" - full1)
  in
  Printf.printf "  %-22s %-10s %-10s %-10s %s\n" "hop" "bytes" "pack(s)"
    "xfer(s)" "total(s)";
  Printf.printf "  %-22s %-10d %-10.4f %-10.4f %.4f\n" "cold (full)"
    (c recv "migrate.bytes_full")
    pack1_s xfer1_s total1;
  Printf.printf "  %-22s %-10d %-10.4f %-10.4f %.4f\n" "warm (delta)"
    warm_bytes pack2_s xfer2_s total2;
  Printf.printf "  %-22s %-10d %-10.4f %-10.4f %.4f\n"
    "forced-full fallback" fallback_bytes
    (pack2_s +. fullpack2_s)
    (xfer2_s +. xfer2f_s)
    total3;
  Printf.printf
    "\n  delta: %d blocks walked, %d copied, %d patched, %d literal; \
     %d/%d cells shipped\n"
    stats.Migrate.Wire.ds_blocks stats.Migrate.Wire.ds_copy
    stats.Migrate.Wire.ds_patch stats.Migrate.Wire.ds_lit
    stats.Migrate.Wire.ds_shipped_cells stats.Migrate.Wire.ds_total_cells;
  (* the reconstruction the receiver resumed is byte-identical to what a
     full hop would have delivered *)
  let reconstructed =
    match Migrate.Wire.decode_packet delta_bytes with
    | Migrate.Wire.Delta d ->
      Migrate.Wire.apply_delta ~baseline:packed1.Migrate.Pack.p_image d
    | Migrate.Wire.Full _ -> failwith "bench: delta encoded as full"
  in
  print_newline ();
  verdict "warm delta image <= 25% of the full image" (dbytes * 4 <= full2);
  verdict "reconstruction re-encodes byte-identically"
    (String.equal
       (Migrate.Wire.encode reconstructed)
       packed2.Migrate.Pack.p_bytes);
  verdict "receiver registry: 1 delta hit, 0 misses"
    (c recv "migrate.delta_hits" = 1 && c recv "migrate.delta_misses" = 0);
  verdict "unknown baseline rejected, full re-ship accepted"
    (c recv_cold "migrate.delta_misses" = 1
    && c recv_cold "server.accepted" = 2);
  verdict "warm delta hop total < cold hop total" (total2 < total1)

(* ================================================================== *)
(* E2-E4: speculation cost vs heap mutation (paper Section 5,          *)
(* paragraph 2: entry ~40 us independent of mutation; abort 120->135   *)
(* us for 10->100 %; commit 81->87 us; 200 KB heap)                    *)
(* ================================================================== *)

(* A 200 KB heap: 1600 blocks of 16 cells (8 bytes per cell). *)
let spec_blocks = 1600
let spec_block_cells = 16

let make_spec_heap () =
  let heap = Heap.create ~initial_cells:(spec_blocks * 24 * 2) () in
  let engine = Spec.Engine.create heap in
  let idxs =
    Array.init spec_blocks (fun i ->
        Heap.alloc heap ~tag:Heap.Array ~size:spec_block_cells
          ~init:(Value.Vint i))
  in
  heap, engine, idxs

let cont0 = { Spec.Engine.entry = "bench"; args = [] }

(* mutate [percent] % of the blocks (one write each: the per-block COW
   clone is the speculation cost driver) *)
let mutate heap idxs percent =
  let n = Array.length idxs * percent / 100 in
  for i = 0 to n - 1 do
    Heap.write heap idxs.(i) 0 (Value.Vint (-i))
  done

let time_op ~iters f =
  (* returns MEDIAN seconds per operation: microsecond-scale samples are
     occasionally inflated by host GC pauses or OS jitter, and a single
     outlier would skew a mean *)
  let samples = Array.init iters (fun _ -> f ()) in
  Array.sort compare samples;
  samples.(iters / 2)

let e2_e4 () =
  section "E2-E4: speculation operations vs heap mutation (200 KB heap)";
  Printf.printf
    "paper: entry ~40 us (flat); abort 120 us @10%% -> 135 us @100%%; \
     commit 81 us @10%% -> 87 us @100%%\n\n";
  let iters = 400 in
  (* entry: O(1), measured at various pre-existing mutation levels *)
  let entry_at percent =
    let heap, engine, idxs = make_spec_heap () in
    time_op ~iters (fun () ->
        (* mutate OUTSIDE the timed region; time the enter alone *)
        mutate heap idxs percent;
        let t0 = now_s () in
        let _ = Spec.Engine.enter engine ~cont:cont0 in
        let dt = now_s () -. t0 in
        Spec.Engine.commit engine (Spec.Engine.depth engine);
        dt)
  in
  let abort_at percent =
    let heap, engine, idxs = make_spec_heap () in
    time_op ~iters (fun () ->
        let _ = Spec.Engine.enter engine ~cont:cont0 in
        mutate heap idxs percent;
        let t0 = now_s () in
        let _ = Spec.Engine.rollback engine 1 in
        let dt = now_s () -. t0 in
        (* rollback re-enters (retry): drop the retry level *)
        Spec.Engine.commit engine (Spec.Engine.depth engine);
        dt)
  in
  let commit_at percent =
    let heap, engine, idxs = make_spec_heap () in
    time_op ~iters (fun () ->
        let _ = Spec.Engine.enter engine ~cont:cont0 in
        mutate heap idxs percent;
        let t0 = now_s () in
        Spec.Engine.commit engine 1;
        now_s () -. t0)
  in
  Printf.printf "  %-12s %-12s %-12s %-12s\n" "mutation" "entry(us)"
    "abort(us)" "commit(us)";
  let entries = ref [] and aborts = ref [] and commits = ref [] in
  List.iter
    (fun percent ->
      let e = entry_at percent *. 1e6 in
      let a = abort_at percent *. 1e6 in
      let c = commit_at percent *. 1e6 in
      entries := (percent, e) :: !entries;
      aborts := (percent, a) :: !aborts;
      commits := (percent, c) :: !commits;
      Printf.printf "  %-12s %-12.2f %-12.2f %-12.2f\n"
        (string_of_int percent ^ "%")
        e a c)
    [ 0; 10; 25; 50; 75; 100 ];
  let at l p = List.assoc p !l in
  print_newline ();
  verdict "entry flat in mutation (spread < 3x across sweep)"
    (let es = List.map snd !entries in
     let mx = List.fold_left max (List.hd es) es
     and mn = List.fold_left min (List.hd es) es in
     mx < 3.0 *. mn +. 1.0 (* +1us noise floor *));
  verdict "abort grows with mutation (10% -> 100%)"
    (at aborts 100 > at aborts 10);
  verdict "commit grows with mutation (10% -> 100%)"
    (at commits 100 > at commits 10);
  verdict "abort costs more than commit at every mutation level"
    (List.for_all
       (fun (p, a) -> a >= at commits p *. 0.8)
       !aborts);
  verdict "entry much cheaper than abort at 10%"
    (at entries 10 *. 2.0 < at aborts 10);
  (* bechamel cross-checks: full enter+mutate+resolve cycles *)
  let heap, engine, idxs = make_spec_heap () in
  let cycle_commit =
    bechamel_ns "enter+mutate10%+commit" (fun () ->
        let _ = Spec.Engine.enter engine ~cont:cont0 in
        mutate heap idxs 10;
        Spec.Engine.commit engine (Spec.Engine.depth engine))
  in
  let heap, engine, idxs = make_spec_heap () in
  let cycle_abort =
    bechamel_ns "enter+mutate10%+abort" (fun () ->
        let _ = Spec.Engine.enter engine ~cont:cont0 in
        mutate heap idxs 10;
        let _ = Spec.Engine.rollback engine 1 in
        Spec.Engine.commit engine (Spec.Engine.depth engine))
  in
  Printf.printf
    "\n  bechamel (full cycles @10%% mutation): commit cycle = %.1f us, \
     abort cycle = %.1f us\n"
    (cycle_commit /. 1e3) (cycle_abort /. 1e3)

(* ================================================================== *)
(* E5: context switch baseline (paper: ~300 us for 2 processes with    *)
(* 200 KB heaps — speculation entry is an order cheaper)               *)
(* ================================================================== *)

let e5 () =
  section "E5: context-switch baseline (paper Section 5)";
  Printf.printf
    "paper: context switch ~300 us (2 procs, 200 KB heaps) vs \
     speculation entry ~40 us\n\n";
  List.iter
    (fun arch ->
      let cycles = Vm.Emulator.context_switch_cycles arch in
      Printf.printf
        "  %-8s register-file save/restore: %4d cycles = %6.3f us \
         simulated\n"
        arch.Vm.Arch.name cycles
        (Vm.Arch.seconds arch cycles *. 1e6))
    Vm.Arch.all;
  (* speculation entry on the simulated clock for comparison *)
  let entry_cycles = Vm.Arch.cisc32.Vm.Arch.cycles Vm.Arch.Trap in
  Printf.printf
    "  %-8s speculation entry trap:      %4d cycles = %6.3f us \
     simulated\n"
    "cisc32" entry_cycles
    (Vm.Arch.seconds Vm.Arch.cisc32 entry_cycles *. 1e6);
  print_newline ();
  verdict "speculation entry cheaper than a context switch"
    (entry_cycles < Vm.Emulator.context_switch_cycles Vm.Arch.cisc32)

(* ================================================================== *)
(* F1: Figure 1's atomic transfer under fault injection                *)
(* ================================================================== *)

let transfer_src speculative =
  if speculative then
    {|
int transfer(int obj1, int obj2, int k) {
  int *buf1 = alloc_int(k);
  int *buf2 = alloc_int(k);
  int specid = speculate();
  if (specid > 0) {
    if (obj_read(obj1, buf1, k) != k) abort(specid);
    if (obj_read(obj2, buf2, k) != k) abort(specid);
    if (obj_write(obj1, buf2, k) != k) abort(specid);
    if (obj_write(obj2, buf1, k) != k) abort(specid);
    commit(specid);
    return 1;
  }
  return 0;
}
int main() { return transfer(1, 2, 4); }
|}
  else
    {|
int transfer(int obj1, int obj2, int k) {
  int *buf1 = alloc_int(k);
  int *buf2 = alloc_int(k);
  if (obj_read(obj1, buf1, k) != k) return 0;
  if (obj_read(obj2, buf2, k) != k) return 0;
  if (obj_write(obj1, buf2, k) != k) return 0;
  if (obj_write(obj2, buf1, k) != k) {
    int tries = 0;
    while (obj_write(obj1, buf1, k) != k) {
      tries = tries + 1;
      if (tries > 3) { return 0 - 1; }
    }
    return 0;
  }
  return 1;
}
int main() { return transfer(1, 2, 4); }
|}

let f1 () =
  section "F1: Figure 1 — atomicity of the speculative transfer";
  let fir_trad =
    match Minic.Driver.compile (transfer_src false) with
    | Ok f -> f
    | Error _ -> assert false
  in
  let fir_spec =
    match Minic.Driver.compile (transfer_src true) with
    | Ok f -> f
    | Error _ -> assert false
  in
  let runs = 200 in
  let tally fir p =
    let ok = ref 0 and clean = ref 0 and bad = ref 0 in
    for seed = 1 to runs do
      let cluster = Net.Cluster.create_cfg { Net.Cluster.Config.default with node_count = 1; seed } in
      Net.Cluster.set_object cluster 1 "AAAA";
      Net.Cluster.set_object cluster 2 "BBBB";
      Net.Cluster.set_object_failure_probability cluster p;
      let pid = Net.Cluster.spawn cluster ~node_id:0 ~seed fir in
      let _ = Net.Cluster.run cluster in
      let status =
        match Net.Cluster.entry_of_pid cluster pid with
        | Some e -> e.Net.Cluster.proc.Vm.Process.status
        | None -> Vm.Process.Trapped "lost"
      in
      let o1 = Option.get (Net.Cluster.get_object cluster 1) in
      let o2 = Option.get (Net.Cluster.get_object cluster 2) in
      match status with
      | Vm.Process.Exited 1 when o1 = "BBBB" && o2 = "AAAA" -> incr ok
      | Vm.Process.Exited 0 when o1 = "AAAA" && o2 = "BBBB" -> incr clean
      | _ -> incr bad
    done;
    !ok, !clean, !bad
  in
  Printf.printf "  %-22s %-8s %-9s %-11s %s\n" "version" "p(fail)" "success"
    "clean fail" "INCONSISTENT";
  let spec_bad = ref 0 and trad_bad = ref 0 in
  List.iter
    (fun p ->
      let ok, clean, bad = tally fir_trad p in
      trad_bad := !trad_bad + bad;
      Printf.printf "  %-22s %-8.2f %-9d %-11d %d\n" "traditional" p ok clean
        bad;
      let ok, clean, bad = tally fir_spec p in
      spec_bad := !spec_bad + bad;
      Printf.printf "  %-22s %-8.2f %-9d %-11d %d\n" "speculative (Fig. 1)" p
        ok clean bad)
    [ 0.1; 0.3; 0.5 ];
  print_newline ();
  verdict "speculative transfer never inconsistent" (!spec_bad = 0);
  verdict "hand-written undo IS sometimes inconsistent" (!trad_bad > 0)

(* ================================================================== *)
(* F2: Figure 2 — grid computation, failure, recovery                  *)
(* ================================================================== *)

let grid_config interval =
  (* a long-running computation (the paper's setting): each step models a
     3 ms production-scale tile via the work_us charge, while the small
     verification grid is still checked bit-exactly against the golden
     model *)
  { Mcc.Gridapp.ranks = 4; rows_per_rank = 6; cols = 12; timesteps = 120;
    interval; work_us_per_step = 3000 }

let fresh_cluster ?(nodes = 5) ?(faults = Net.Faults.none) ?(seed = 1)
    ?detector ?(replication = 0) () =
  Net.Cluster.create_cfg
    { Net.Cluster.Config.default with
      node_count = nodes;
      seed;
      net = Some (Net.Simnet.create ~latency_us:5.0 ());
      faults;
      detector;
      replication }

(* run to completion without faults; returns simulated seconds *)
let grid_clean interval =
  let cluster = fresh_cluster () in
  let d = Mcc.Gridapp.deploy ~spare:true cluster (grid_config interval) in
  let _ = Mcc.Gridapp.run d in
  let ok =
    Array.for_all2
      (fun g s -> s = Some g)
      (Mcc.Gridapp.golden_checksums (grid_config interval))
      (Mcc.Gridapp.checksums d)
  in
  if not ok then failwith "bench: clean grid run diverged from golden";
  Net.Cluster.now cluster

(* run with one node failure + checkpoint recovery *)
let grid_recover interval =
  let cluster = fresh_cluster () in
  let config = grid_config interval in
  let d = Mcc.Gridapp.deploy ~spare:true cluster config in
  let victims =
    (* strike when roughly 60 % of the computation is done *)
    Mcc.Gridapp.fail_and_recover ~rounds_before_failure:20
      ~after_time:(0.6 *. float_of_int (grid_config interval).Mcc.Gridapp.timesteps
                   *. float_of_int (grid_config interval).Mcc.Gridapp.work_us_per_step
                   *. 1e-6)
      d ~victim_node:1 ~spare_node:4
  in
  let t_fail = Net.Cluster.now cluster in
  let _ = Mcc.Gridapp.run d in
  let ok =
    Array.for_all2
      (fun g s -> s = Some g)
      (Mcc.Gridapp.golden_checksums config)
      (Mcc.Gridapp.checksums d)
  in
  if not ok then failwith "bench: recovery run diverged from golden";
  victims, t_fail, Net.Cluster.now cluster, cluster

let f2 () =
  section "F2: Figure 2 — recovery cost: checkpoint+rollback vs restart";
  let interval = 10 in
  let t_plain = grid_clean 0 in
  let t_ckpt = grid_clean interval in
  let victims, t_fail, t_recover, cluster = grid_recover interval in
  (* restart-from-scratch: everything until the failure is wasted, every
     rank's process must be started again (load + stub link, like a
     resurrection without the saved progress), and the whole computation
     reruns *)
  let startup_s =
    let fir = Mcc.Gridapp.compile_rank (grid_config interval) 0 in
    let image = Vm.Codegen.compile ~arch:Vm.Arch.cisc32 fir in
    Vm.Arch.seconds Vm.Arch.cisc32 (Vm.Codegen.simulated_link_cycles image)
  in
  let t_restart = t_fail +. startup_s +. t_plain in
  Printf.printf "  fault-free, no fault tolerance:        %8.4f s\n" t_plain;
  Printf.printf "  fault-free, checkpoints every %2d:      %8.4f s  \
                 (overhead %.1f%%)\n"
    interval t_ckpt
    (100.0 *. (t_ckpt -. t_plain) /. t_plain);
  Printf.printf "  failure at t=%.4f s (ranks %s lost):\n" t_fail
    (String.concat "," (List.map string_of_int victims));
  Printf.printf "    recover from checkpoint + rollback:  %8.4f s\n"
    t_recover;
  Printf.printf "    restart from scratch:                %8.4f s\n"
    t_restart;
  (* the recovery run's fault-tolerance traffic, read back from the
     cluster metrics registry *)
  let m = Net.Cluster.metrics cluster in
  let c name = Obs.Metrics.counter_value m name in
  Printf.printf
    "  cluster registry: %d checkpoints, %d node failure(s), %d \
     resurrection(s), %d sched rounds\n"
    (c "cluster.checkpoints")
    (c "cluster.node_failures")
    (c "cluster.resurrections")
    (c "sched.rounds");
  print_newline ();
  verdict "checkpointing overhead is modest (< 50%)"
    (t_ckpt < 1.5 *. t_plain);
  verdict "recovery beats restart-from-scratch" (t_recover < t_restart);
  verdict "recovery cost < one full re-run"
    (t_recover -. t_ckpt < t_plain)

let f2b () =
  section "F2b: checkpoint-interval trade-off (paper Section 2: \"balance \
           the overhead of speculations against the expected cost of \
           fault recovery\")";
  Printf.printf "  %-10s %-14s %-16s\n" "interval" "no-fault (s)"
    "with-failure (s)";
  let rows =
    List.map
      (fun interval ->
        let clean = grid_clean interval in
        let _, _, faulty, _ = grid_recover interval in
        Printf.printf "  %-10d %-14.4f %-16.4f\n" interval clean faulty;
        interval, clean, faulty)
      [ 2; 5; 10; 20; 30 ]
  in
  print_newline ();
  let clean_of i = let _, c, _ = List.find (fun (k, _, _) -> k = i) rows in c in
  verdict "no-fault cost decreases with longer intervals"
    (clean_of 2 > clean_of 30);
  (* with failures the total should not be monotone: tiny intervals pay
     checkpoint overhead, huge intervals pay recovery re-execution *)
  let faulty_of i =
    let _, _, f = List.find (fun (k, _, _) -> k = i) rows in
    f
  in
  verdict "failure runs cost more than their no-fault counterparts"
    (List.for_all (fun (i, c, f) -> ignore i; f > c) rows);
  verdict "short intervals pay visible checkpoint overhead"
    (faulty_of 2 > faulty_of 10 || clean_of 2 > clean_of 10)

(* ================================================================== *)
(* F3: grid completion under injected fault classes                    *)
(* ================================================================== *)

(* Each class is a fault plan fed to the deterministic injection
   runtime; the grid must still terminate with golden checksums and
   exactly one live copy of every rank.  Times are simulated seconds
   well inside the ~0.36 s fault-free span of the 120-step grid. *)
let f3_classes =
  let base = { Net.Faults.none with Net.Faults.f_retransmit_s = 0.0001 } in
  [
    "baseline", Net.Faults.none;
    "loss 10%", { base with Net.Faults.f_loss = 0.10 };
    "dup 5%", { base with Net.Faults.f_dup = 0.05 };
    "jitter", { base with Net.Faults.f_jitter_s = 0.00002 };
    ( "partition",
      { base with
        Net.Faults.f_partitions =
          [ { Net.Faults.pa = 0; pb = 1; p_from = 0.05; p_until = 0.12 } ] } );
    ( "stall",
      { base with
        Net.Faults.f_stalls =
          [ { Net.Faults.s_node = 2; s_at = 0.08; s_for = 0.01 } ] } );
    ( "crash",
      { base with
        Net.Faults.f_crashes = [ { Net.Faults.c_node = 1; c_at = 0.15 } ] } );
    ( "combined",
      { base with
        Net.Faults.f_loss = 0.10;
        f_dup = 0.05;
        f_jitter_s = 0.00002;
        f_partitions =
          [ { Net.Faults.pa = 0; pb = 2; p_from = 0.05; p_until = 0.09 } ];
        f_stalls = [ { Net.Faults.s_node = 3; s_at = 0.10; s_for = 0.005 } ];
        f_crashes = [ { Net.Faults.c_node = 1; c_at = 0.15 } ] } );
  ]

let f3 () =
  section "F3: grid completion under injected fault classes (10% loss, \
           duplication, jitter, partition, stall, crash)";
  let config = grid_config 10 in
  let golden = Mcc.Gridapp.golden_checksums config in
  Printf.printf "  %-11s %-9s %-11s %-8s %-8s %-12s %s\n" "class"
    "time(s)" "retransmit" "dup" "retries" "backoff(ms)" "crashes";
  let rows = ref [] and all_ok = ref true in
  List.iter
    (fun (name, plan) ->
      let plan =
        match Net.Faults.validate plan with
        | Ok p -> p
        | Error e -> failwith ("f3: bad plan for " ^ name ^ ": " ^ e)
      in
      let cluster = fresh_cluster ~faults:plan ~seed:7 () in
      let d = Mcc.Gridapp.deploy ~spare:true cluster config in
      let _ = Mcc.Gridapp.run_resilient d in
      let done_ok =
        Array.for_all2 (fun g s -> s = Some g) golden
          (Mcc.Gridapp.checksums d)
      in
      (* no duplicated ranks: exactly one terminated copy of each *)
      let copies = Array.make config.Mcc.Gridapp.ranks 0 in
      List.iter
        (fun (_, rank, _, status) ->
          match rank, status with
          | Some r, Vm.Process.Exited _
            when r >= 0 && r < Array.length copies ->
            copies.(r) <- copies.(r) + 1
          | _ -> ())
        (Net.Cluster.statuses cluster);
      let single = Array.for_all (fun n -> n = 1) copies in
      all_ok := !all_ok && done_ok && single;
      let t = Net.Cluster.now cluster in
      rows := (name, t) :: !rows;
      let m = Net.Cluster.metrics cluster in
      let c n = Obs.Metrics.counter_value m n in
      Printf.printf "  %-11s %-9.4f %-11d %-8d %-8d %-12.3f %d%s\n" name t
        (c "faults.retransmits")
        (c "faults.msg_dup")
        (c "migrate.retries")
        (1e3 *. Obs.Metrics.hist_sum_of m "migrate.backoff_seconds")
        (c "faults.crashes")
        (if done_ok && single then "" else "  [FAILED]"))
    f3_classes;
  print_newline ();
  verdict "every fault class terminates with golden checksums, one copy \
           per rank" !all_ok;
  let baseline_t = List.assoc "baseline" !rows in
  verdict "no faulty class finishes before the fault-free baseline"
    (List.for_all
       (fun (name, t) -> name = "baseline" || t >= baseline_t -. 1e-9)
       !rows);
  (* the resilient hop protocol itself: one whole-process migration per
     fault class, reporting the per-hop retry/backoff decisions *)
  Printf.printf "\n  migration hop protocol (single process, node 0 -> 1):\n";
  Printf.printf "  %-14s %-9s %-8s %-12s %s\n" "class" "attempts"
    "retries" "backoff(ms)" "outcome";
  let worker =
    match
      Minic.Driver.compile
        {|
int main() {
  int acc = 0;
  int i;
  int round;
  for (round = 0; round < 400; round = round + 1) {
    for (i = 0; i < 50; i = i + 1) acc = (acc + i * 7) % 1000000;
  }
  return acc;
}
|}
    with
    | Ok fir -> fir
    | Error e -> failwith (Minic.Driver.error_to_string e)
  in
  let retried = ref false and degraded = ref false in
  List.iter
    (fun (name, plan) ->
      let cluster =
        fresh_cluster ~nodes:2
          ~faults:{ plan with Net.Faults.f_seed = 7 }
          ~seed:7 ()
      in
      let pid = Net.Cluster.spawn cluster ~node_id:0 worker in
      let _ = Net.Cluster.run cluster ~max_rounds:25 in
      (match
         Net.Cluster.move cluster
           (Net.Cluster.Move.request ~reason:Net.Cluster.Move.Explicit
              (Net.Cluster.Move.Running pid) ~dest:1)
       with
      | Ok { Net.Cluster.Move.mv_report = None; _ } ->
        Printf.printf "  %-14s %-9s %-8s %-12s migrated (no report)\n" name
          "-" "-" "-"
      | Ok { Net.Cluster.Move.mv_report = Some rep; _ } ->
        if rep.Net.Cluster.rep_retries > 0 then retried := true;
        Printf.printf "  %-14s %-9d %-8d %-12.3f migrated\n" name
          rep.Net.Cluster.rep_attempts rep.Net.Cluster.rep_retries
          (1e3 *. rep.Net.Cluster.rep_backoff_s)
      | Error (Net.Cluster.Unreachable { attempts; reason }) ->
        degraded := true;
        Printf.printf "  %-14s %-9d %-8d %-12s resumed locally (%s)\n" name
          attempts (attempts - 1) "-" reason
      | Error e ->
        Printf.printf "  %-14s %-9s %-8s %-12s ERROR %s\n" name "-" "-" "-"
          (Net.Cluster.migration_error_to_string e));
      let _ = Net.Cluster.run cluster in
      ())
    [
      "clean", Net.Faults.none;
      ( "loss 30%",
        { Net.Faults.none with
          Net.Faults.f_loss = 0.30;
          f_retransmit_s = 0.0001 } );
      ( "partition+heal",
        { Net.Faults.none with
          Net.Faults.f_partitions =
            [ { Net.Faults.pa = 0; pb = 1; p_from = 0.0; p_until = 0.05 } ]
        } );
      ( "partition",
        { Net.Faults.none with
          Net.Faults.f_partitions =
            [ { Net.Faults.pa = 0; pb = 1; p_from = 0.0; p_until = infinity }
            ] } );
    ];
  print_newline ();
  verdict "faulty hops were retried with backoff" !retried;
  verdict "an unreachable target degrades to local execution" !degraded

(* ================================================================== *)
(* F4: heartbeat failure detection, epoch-fenced resurrection, and     *)
(* replicated checkpoint storage — the availability story with the     *)
(* omniscient recovery oracle turned OFF                               *)
(* ================================================================== *)

(* Detection timings for the 120-step grid (3 ms/step): suspicion a few
   heartbeat intervals after true silence, well under a checkpoint
   interval. *)
let f4_detector =
  { Net.Detector.hb_interval_s = 0.0005;
    suspect_timeout_s = 0.002;
    hb_bytes = 8 }

(* Failure classes, all recovered from heartbeat suspicion alone.  Every
   fault is scheduled at 0.15 s — past several checkpoint rounds — so
   detection and resurrection latencies are comparable across classes.
   The crash classes keep a hot spare; the false-suspicion classes
   (stall, isolation) run WITHOUT one, because a falsely-suspected node
   is only convicted unanimously when every observer is busy enough for
   its own clock to cross the silence window. *)
let f4_classes =
  let base = { Net.Faults.none with Net.Faults.f_retransmit_s = 0.0001 } in
  [
    ( "crash",
      { base with
        Net.Faults.f_crashes = [ { Net.Faults.c_node = 1; c_at = 0.15 } ] },
      5,
      true );
    ( "crash+flip",
      { base with
        Net.Faults.f_crashes = [ { Net.Faults.c_node = 1; c_at = 0.15 } ];
        f_store_flip = 0.1 },
      5,
      true );
    ( "stall (false)",
      { base with
        Net.Faults.f_stalls =
          [ { Net.Faults.s_node = 2; s_at = 0.15; s_for = 0.02 } ] },
      4,
      false );
    ( "isolation",
      { base with
        Net.Faults.f_partitions =
          List.map
            (fun peer ->
              { Net.Faults.pa = 1; pb = peer; p_from = 0.15; p_until = 0.4 })
            [ 0; 2; 3 ] },
      4,
      false );
  ]

let f4 () =
  section "F4: failure detection by heartbeat, epoch-fenced \
           resurrection, replicated checkpoints (k=2)";
  let config = grid_config 10 in
  let golden = Mcc.Gridapp.golden_checksums config in
  Printf.printf "  %-14s %-8s %-7s %-12s %-7s %-8s %-10s %s\n" "class"
    "time(s)" "avail" "suspect(F)" "fenced" "repairs" "suspect@(s)"
    "resurrect@(s)";
  let all_ok = ref true
  and false_fenced = ref false
  and detection_first = ref true in
  List.iter
    (fun (name, plan, nodes, spare) ->
      let plan =
        match Net.Faults.validate plan with
        | Ok p -> p
        | Error e -> failwith ("f4: bad plan for " ^ name ^ ": " ^ e)
      in
      let cluster =
        fresh_cluster ~nodes ~faults:plan ~seed:7 ~detector:f4_detector
          ~replication:2 ()
      in
      let d = Mcc.Gridapp.deploy ~spare cluster config in
      let _ = Mcc.Gridapp.run_resilient d in
      let sums = Mcc.Gridapp.checksums d in
      let completed = ref 0 in
      Array.iteri
        (fun r s -> if s = Some golden.(r) then incr completed)
        sums;
      let wrong =
        Array.exists2 (fun g s -> s <> None && s <> Some g) golden sums
      in
      let copies = Array.make config.Mcc.Gridapp.ranks 0 in
      List.iter
        (fun (_, rank, _, status) ->
          match (rank, status) with
          | Some r, Vm.Process.Exited _ when r >= 0 && r < Array.length copies
            ->
            copies.(r) <- copies.(r) + 1
          | _ -> ())
        (Net.Cluster.statuses cluster);
      let single = Array.for_all (fun n -> n <= 1) copies in
      let full = !completed = config.Mcc.Gridapp.ranks in
      all_ok := !all_ok && full && single && not wrong;
      let m = Net.Cluster.metrics cluster in
      let c n = Obs.Metrics.counter_value m n in
      (* first suspicion / first resurrection, absolute simulated time:
         for the crash classes the gap above the 0.15 s fault time is
         the detection latency; the false-suspicion classes convict on
         natural clock skew, which can precede the scheduled fault —
         that is the scenario, and fencing is what keeps it safe *)
      let timeline = Obs.Trace.timeline (Net.Cluster.trace cluster) in
      let first_time pred =
        List.find_map
          (fun (e : Obs.Trace.event) ->
            if pred e.Obs.Trace.kind then Some e.Obs.Trace.time else None)
          timeline
      in
      let t_suspect =
        first_time (function Obs.Trace.Suspect _ -> true | _ -> false)
      in
      let t_resurrect =
        first_time (function Obs.Trace.Resurrect _ -> true | _ -> false)
      in
      (match (t_suspect, t_resurrect) with
      | Some ts, Some tr when tr < ts -> detection_first := false
      | None, Some _ -> detection_first := false
      | _ -> ());
      if c "detector.false_suspicions" > 0 && c "fence.rejections" > 0 then
        false_fenced := true;
      let at = function
        | Some t -> Printf.sprintf "%.4f" t
        | None -> "-"
      in
      Printf.printf "  %-14s %-8.4f %d/%-5d %4d(%d)%5s %-7d %-8d %-10s %s%s\n"
        name (Net.Cluster.now cluster) !completed config.Mcc.Gridapp.ranks
        (c "detector.suspicions")
        (c "detector.false_suspicions")
        "" (c "fence.rejections") (c "storage.repairs") (at t_suspect)
        (at t_resurrect)
        (if full && single && not wrong then "" else "  [FAILED]"))
    f4_classes;
  print_newline ();
  verdict "every class terminates golden with at most one copy per rank"
    !all_ok;
  verdict "every resurrection was preceded by a heartbeat suspicion"
    !detection_first;
  verdict "a false suspicion was raised and the zombie was fenced"
    !false_fenced;
  (* availability under a storage-fault seed sweep: crash + lost / torn /
     flipped replica writes; a run either completes golden or wedges
     with a typed absence — corrupt checkpoint bytes are never served *)
  Printf.printf
    "\n  crash + storage faults (lost 2%%, torn 2%%, flip 5%%), k=2, \
     seed sweep:\n";
  Printf.printf "  %-7s %-8s %-7s %-9s %-9s %-9s %s\n" "seed" "time(s)"
    "avail" "badwrites" "repairs" "corrupt" "outcome";
  let any_storage_fault = ref false
  and any_full = ref false
  and none_wrong = ref true in
  List.iter
    (fun seed ->
      let plan =
        { Net.Faults.none with
          Net.Faults.f_retransmit_s = 0.0001;
          f_crashes = [ { Net.Faults.c_node = 1; c_at = 0.15 } ];
          f_store_lost = 0.02;
          f_store_torn = 0.02;
          f_store_flip = 0.05 }
      in
      let cluster =
        fresh_cluster ~faults:plan ~seed ~detector:f4_detector
          ~replication:2 ()
      in
      let d = Mcc.Gridapp.deploy ~spare:true cluster config in
      let _ = Mcc.Gridapp.run_resilient d in
      let sums = Mcc.Gridapp.checksums d in
      let completed = ref 0 in
      Array.iteri
        (fun r s -> if s = Some golden.(r) then incr completed)
        sums;
      let wrong =
        Array.exists2 (fun g s -> s <> None && s <> Some g) golden sums
      in
      if wrong then none_wrong := false;
      if !completed = config.Mcc.Gridapp.ranks then any_full := true;
      let m = Net.Cluster.metrics cluster in
      let c n = Obs.Metrics.counter_value m n in
      let bad =
        c "faults.store_lost" + c "faults.store_torn" + c "faults.store_flip"
      in
      if bad > 0 then any_storage_fault := true;
      Printf.printf "  %-7d %-8.4f %d/%-5d %-9d %-9d %-9d %s\n" seed
        (Net.Cluster.now cluster) !completed config.Mcc.Gridapp.ranks bad
        (c "storage.repairs")
        (c "storage.corrupt_reads")
        (if wrong then "WRONG DATA"
         else if !completed = config.Mcc.Gridapp.ranks then "golden"
         else "wedged (typed)"))
    [ 3; 7; 11; 20260807 ];
  print_newline ();
  verdict "replica writes were actually damaged by the seeded faults"
    !any_storage_fault;
  verdict "no seed ever produced wrong data (golden or typed wedge only)"
    !none_wrong;
  verdict "at least one seed rode out crash + storage faults to golden"
    !any_full

(* ================================================================== *)
(* A1 (ablation): copy-on-write speculation vs migration-based         *)
(* rollback (paper Section 4.3: expressing rollback with checkpoint    *)
(* files "can be very expensive ... even parts of the state that have  *)
(* not changed ... speculation uses a copy-on-write mechanism ... and  *)
(* does not need to recompile the code")                               *)
(* ================================================================== *)

let a1 () =
  section "A1 (ablation): COW speculation vs checkpoint-file rollback";
  (* a process with a 200 KB live heap stopped at a safe point *)
  let fir =
    match Minic.Driver.compile (migrator_source ~variants:2 ~cells:25_600 ())
    with
    | Ok fir -> fir
    | Error e -> failwith (Minic.Driver.error_to_string e)
  in
  let proc = run_to_migration fir in
  (* put it back in the Running state at a safe point *)
  Vm.Process.migration_failed proc;
  let heap = proc.Vm.Process.heap in
  let engine = proc.Vm.Process.spec in
  let idxs =
    (* the blocks we will mutate: allocate a fresh working set *)
    Array.init 400 (fun i ->
        Heap.alloc heap ~tag:Heap.Array ~size:16 ~init:(Value.Vint i))
  in
  let mutate_some () =
    for i = 0 to (Array.length idxs / 10) - 1 do
      Heap.write heap idxs.(i) 0 (Value.Vint (-i))
    done
  in
  (* --- COW speculation: enter, mutate 10 %, abort *)
  let cow_s =
    time_op ~iters:200 (fun () ->
        let t0 = now_s () in
        let _ = Spec.Engine.enter engine ~cont:cont0 in
        mutate_some ();
        let _ = Spec.Engine.rollback engine 1 in
        Spec.Engine.commit engine (Spec.Engine.depth engine);
        now_s () -. t0)
  in
  (* --- migration-based rollback: checkpoint the WHOLE process on entry,
     restore it (verify + recompile) on abort *)
  let arch = proc.Vm.Process.arch in
  let clock = float_of_int arch.Vm.Arch.clock_mhz *. 1e6 in
  let net = Net.Simnet.create () in
  let packed = ref None in
  let ckpt_wall =
    time_op ~iters:20 (fun () ->
        let t0 = now_s () in
        packed := Some (Migrate.Pack.pack_running ~with_binary:false proc);
        now_s () -. t0)
  in
  let bytes =
    match !packed with
    | Some p -> String.length p.Migrate.Pack.p_bytes
    | None -> 0
  in
  let restore_wall =
    time_op ~iters:20 (fun () ->
        let t0 = now_s () in
        (match !packed with
        | Some p -> (
          match Migrate.Pack.unpack ~arch p.Migrate.Pack.p_bytes with
          | Ok _ -> ()
          | Error m -> failwith m)
        | None -> ());
        now_s () -. t0)
  in
  let compile_cycles =
    match !packed with
    | Some p -> (
      match Migrate.Pack.unpack ~arch p.Migrate.Pack.p_bytes with
      | Ok (_, _, _, c) -> c.Migrate.Pack.u_compile_cycles
      | Error m -> failwith m)
    | None -> 0
  in
  let mig_sim =
    (2.0 *. Net.Simnet.transfer_seconds net bytes) (* write + read back *)
    +. (float_of_int compile_cycles /. clock)
  in
  Printf.printf "  COW speculation (enter + 10%% mutate + abort):
";
  Printf.printf "    host wall:        %10.1f us
" (cow_s *. 1e6);
  Printf.printf
    "  migration-based rollback (checkpoint file on entry, restore on abort):
";
  Printf.printf "    image size:       %10d bytes (the WHOLE state)
" bytes;
  Printf.printf "    host wall:        %10.1f us (pack %0.1f + restore %0.1f)
"
    ((ckpt_wall +. restore_wall) *. 1e6)
    (ckpt_wall *. 1e6) (restore_wall *. 1e6);
  Printf.printf "    simulated:        %10.1f ms (2 x transfer + recompile)
"
    (mig_sim *. 1e3);
  print_newline ();
  verdict "COW abort beats checkpoint-file rollback by >= 10x"
    (cow_s *. 10.0 < ckpt_wall +. restore_wall);
  verdict "checkpoint ships unmodified state (image >> modified bytes)"
    (bytes > 10 * (400 / 10 * 16 * 8))

(* ================================================================== *)
(* A2 (ablation): the generational design of the collector (paper       *)
(* Section 4: "a minor collection phase that is fast and eliminates     *)
(* blocks with short live ranges, and a major collection phase that     *)
(* sweeps and compacts the entire heap")                                *)
(* ================================================================== *)

let a2 () =
  section "A2 (ablation): generational vs major-only collection";
  (* an allocation-heavy workload over a FRAGMENTED persistent live set
     (20k small blocks): every major collection must re-mark and re-walk
     all of them, while minors only look at the young garbage *)
  let fir =
    let open Fir in
    let live_blocks = 20_000 and rounds = 150_000 in
    Builder.(
      let fill, _ =
        for_loop ~name:"fill" ~lo:(int 0) ~hi:(int live_blocks)
          ~state_tys:[ Types.Tptr (Types.Tptr Types.Tint) ]
          ~state:[ nil (Types.Tptr (Types.Tptr Types.Tint)) ]
          ~body:(fun i st continue ->
            match st with
            | [ roots ] ->
              array Types.Tint ~size:(int 4) ~init:i (fun blk ->
                  store roots i blk (continue [ roots ]))
            | _ -> assert false)
          ~after:(fun st ->
            match st with
            | [ roots ] -> callf "churn" [ int 0; int 0; roots ]
            | _ -> assert false)
      in
      let churn =
        func "churn"
          [ "i", Types.Tint; "acc", Types.Tint;
            "roots", Types.Tptr (Types.Tptr Types.Tint) ]
          (fun args ->
            match args with
            | [ i; acc; roots ] ->
              lt i (int rounds) (fun more ->
                  if_ more
                    (tuple [ Types.Tint, i; Types.Tint, acc ] (fun junk ->
                         proj Types.Tint junk 0 (fun x ->
                             add acc x (fun acc' ->
                                 rem acc' (int 1000000) (fun acc'' ->
                                     add i (int 1) (fun i' ->
                                         callf "churn" [ i'; acc''; roots ]))))))
                    (exit_ acc))
            | _ -> assert false)
      in
      let main =
        func "main" [] (fun _ ->
            array (Types.Tptr Types.Tint) ~size:(int live_blocks)
              ~init:(nil (Types.Tptr Types.Tint)) (fun roots ->
                callf "fill" [ int 0; roots ]))
      in
      prog [ fill; churn; main ])
  in
  let measure ~generational =
    let proc = Vm.Process.create fir in
    Heap.set_minor_enabled proc.Vm.Process.heap generational;
    let t0 = now_s () in
    (match Vm.Interp.run proc with
    | Vm.Process.Exited _ -> ()
    | _ -> failwith "a2 workload failed");
    let dt = now_s () -. t0 in
    let st = Heap.stats proc.Vm.Process.heap in
    dt, st.Heap.minor_collections, st.Heap.major_collections
  in
  let gen_s, gen_minor, gen_major = measure ~generational:true in
  let maj_s, _, maj_major = measure ~generational:false in
  Printf.printf "  generational: %7.3f s wall  (%d minor + %d major collections)
"
    gen_s gen_minor gen_major;
  Printf.printf "  major-only:   %7.3f s wall  (%d major collections)
"
    maj_s maj_major;
  print_newline ();
  verdict "generational collection is faster on short-lived garbage"
    (gen_s < maj_s);
  verdict "minor collections avoid re-scanning the old generation"
    (gen_major < maj_major)

(* ================================================================== *)
(* M1: mailbox enqueue scaling (regression guard for the two-list      *)
(* FIFO — the old [queue @ [msg]] representation made an N-message     *)
(* burst cost O(N^2))                                                  *)
(* ================================================================== *)

let m1 () =
  section "M1: mailbox enqueue scaling (two-list FIFO)";
  let mk_msg i =
    { Net.Mpi.msg_src_rank = 0; msg_src_pid = 1; msg_tag = 0;
      msg_payload = [| Value.Vint i |]; msg_deliver_at = 0.0;
      msg_spec = None; msg_src_epoch = 0 }
  in
  let burst n =
    (* median over trials: per-burst wall time, drained at the end so
       the FIFO's lazy reversal is paid inside the measurement too *)
    time_op ~iters:9 (fun () ->
        let mb = Net.Mpi.create_mailbox () in
        let t0 = now_s () in
        for i = 0 to n - 1 do
          Net.Mpi.enqueue mb (mk_msg i)
        done;
        for _ = 1 to n do
          match Net.Mpi.try_recv mb ~now:0.0 ~src_rank:0 ~tag:0 with
          | Net.Mpi.Received _ -> ()
          | Net.Mpi.Roll | Net.Mpi.None_yet ->
            failwith "m1: FIFO lost a message"
        done;
        now_s () -. t0)
  in
  (* interleaved 5-enqueue / 3-drain bursts: the front list is
     non-empty every time the back list flips, which is the pattern the
     pre-fix [normalize] handled by appending the reversed back list
     onto the NON-EMPTY front — O(N^2) across a long run of bursts *)
  let interleaved n =
    time_op ~iters:9 (fun () ->
        let mb = Net.Mpi.create_mailbox () in
        let t0 = now_s () in
        let sent = ref 0 and got = ref 0 in
        let recv_one () =
          match Net.Mpi.try_recv mb ~now:0.0 ~src_rank:0 ~tag:0 with
          | Net.Mpi.Received _ -> incr got
          | Net.Mpi.Roll | Net.Mpi.None_yet ->
            failwith "m1: FIFO lost a message"
        in
        while !sent < n do
          for _ = 1 to 5 do
            Net.Mpi.enqueue mb (mk_msg !sent);
            incr sent
          done;
          for _ = 1 to 3 do recv_one () done
        done;
        while !got < n do recv_one () done;
        now_s () -. t0)
  in
  Printf.printf "  %-12s %-10s %-12s %s\n" "pattern" "messages" "total(us)"
    "ns/message";
  let per_msg pattern f n =
    let t = f n in
    let ns = t /. float_of_int n *. 1e9 in
    Printf.printf "  %-12s %-10d %-12.1f %.1f\n" pattern n (t *. 1e6) ns;
    ns
  in
  let ns_1k = per_msg "burst" burst 1_000 in
  let ns_10k = per_msg "burst" burst 10_000 in
  let ns_i1k = per_msg "interleaved" interleaved 1_000 in
  let ns_i10k = per_msg "interleaved" interleaved 10_000 in
  print_newline ();
  (* a quadratic queue would make the per-message cost ~10x worse at
     10k; linear keeps it flat (generous 4x + noise-floor allowance) *)
  verdict "enqueue+drain cost per message flat at 10k (linear, not O(N^2))"
    (ns_10k < 4.0 *. ns_1k +. 50.0);
  verdict
    "interleaved bursts stay flat too (normalize never merges a \
     non-empty front)"
    (ns_i10k < 4.0 *. ns_i1k +. 50.0)

(* ================================================================== *)
(* S1 / V1: the simulation-core and VM fast-path meters                *)
(*                                                                     *)
(* S1 drives a many-process ping-pong through Simnet/Cluster and       *)
(* reports scheduler events (quanta) per wall-clock second, once with  *)
(* the legacy O(nodes x entries) scan scheduler                        *)
(* ([legacy_scan_sched = true]) and once with the indexed per-node     *)
(* resident lists — both from this build, so the before/after rows in  *)
(* BENCH_s1.json come from one commit.  V1 runs compute/branch/memory  *)
(* kernels to completion on the MASM emulator in [Baseline] and [Fast] *)
(* modes (plus the FIR interpreter for scale) and reports MIPS into    *)
(* BENCH_v1.json.  Both files are one JSON object per line.            *)
(*                                                                     *)
(* [perfcheck] re-runs both meters and compares the SPEEDUP RATIOS     *)
(* (indexed/scan, fast/baseline) against bench/baselines/*.json: the   *)
(* ratio is what the optimization owns, and unlike absolute throughput *)
(* it transfers across machines.  A ratio below 70 % of the committed  *)
(* one fails the check (exit 1).                                       *)
(* ================================================================== *)

(* minimal reader for our own one-object-per-line JSON output *)
let json_field line name =
  let pat = Printf.sprintf "\"%s\":" name in
  let plen = String.length pat and len = String.length line in
  let rec find i =
    if i + plen > len then None
    else if String.equal (String.sub line i plen) pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while !stop < len && line.[!stop] <> ',' && line.[!stop] <> '}' do
      incr stop
    done;
    let raw = String.trim (String.sub line start (!stop - start)) in
    if String.length raw >= 2 && raw.[0] = '"' then
      Some (String.sub raw 1 (String.length raw - 2))
    else Some raw

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let read_lines path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        Some (List.rev acc)
    in
    go []
  end

(* --- S1 ----------------------------------------------------------- *)

(* One side of a ping-pong pair: [starts = 1] sends first.  The poll
   loop is the cluster's park/wake path — the receiver parks on
   (peer, k) and the scheduler wakes it from the mailbox index. *)
let pingpong_source ~rounds ~peer ~starts =
  Printf.sprintf
    {|
int main() {
  float *b = alloc_float(4);
  int k; int got;
  for (k = 0; k < %d; k = k + 1) {
    if (%d == 1) {
      msg_send(%d, k, b, 4);
      got = msg_try_recv(%d, k, b, 4);
      while (got == 0 - 1) { got = msg_try_recv(%d, k, b, 4); }
      if (got < 0) { return 1; }
    } else {
      got = msg_try_recv(%d, k, b, 4);
      while (got == 0 - 1) { got = msg_try_recv(%d, k, b, 4); }
      if (got < 0) { return 1; }
      msg_send(%d, k, b, 4);
    }
  }
  return 0;
}
|}
    rounds starts peer peer peer peer peer peer

(* An S1 case: [pairs] ping-pong pairs over [nodes] nodes, pair [p]
   playing [rounds_of_pair p] rounds.  Two regimes:

   - "pingpong": staggered completions (pair p plays 20+p rounds) — a
     mixed population where the legacy scan pays O(nodes x entries) per
     round while the work shrinks;
   - "longtail": a few hundred short-lived pairs plus ONE long-running
     pair (a service process outliving a burst of batch jobs).  After
     the burst drains, the legacy scheduler still scans every dead
     entry from every node on every round of the survivor's life —
     the indexed scheduler has purged them. *)
type s1_case = {
  s1_name : string;
  s1_pairs : int;
  s1_nodes : int;
  s1_rounds_of_pair : int -> int;
}

let s1_cases =
  [
    { s1_name = "pingpong"; s1_pairs = 96; s1_nodes = 12;
      s1_rounds_of_pair = (fun p -> 20 + p) };
    { s1_name = "longtail"; s1_pairs = 384; s1_nodes = 16;
      s1_rounds_of_pair = (fun p -> if p = 0 then 1500 else 8) };
  ]

(* the compiled FIR depends only on (rounds, peer, starts); cache across
   cases, the warm-up and the timed repetitions *)
let s1_fir_cache : (int * int * int, Fir.Ast.program) Hashtbl.t =
  Hashtbl.create 64

let s1_fir ~rounds ~peer ~starts =
  match Hashtbl.find_opt s1_fir_cache (rounds, peer, starts) with
  | Some fir -> fir
  | None ->
    let fir =
      match Minic.Driver.compile (pingpong_source ~rounds ~peer ~starts) with
      | Ok fir -> fir
      | Error e -> failwith (Minic.Driver.error_to_string e)
    in
    Hashtbl.add s1_fir_cache (rounds, peer, starts) fir;
    fir

let s1_run case ~legacy =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = case.s1_nodes;
        seed = 7;
        legacy_scan_sched = legacy;
        net = Some (Net.Simnet.create ~latency_us:5.0 ()) }
  in
  for p = 0 to case.s1_pairs - 1 do
    let rounds = case.s1_rounds_of_pair p in
    let spawn_side ~rank ~peer ~starts =
      let fir = s1_fir ~rounds ~peer ~starts in
      ignore
        (Net.Cluster.spawn cluster ~engine:`Masm ~rank
           ~node_id:(rank mod case.s1_nodes) fir)
    in
    spawn_side ~rank:(2 * p) ~peer:((2 * p) + 1) ~starts:1;
    spawn_side ~rank:((2 * p) + 1) ~peer:(2 * p) ~starts:0
  done;
  let _, wall_s = wall (fun () -> ignore (Net.Cluster.run cluster)) in
  List.iter
    (fun (pid, _, _, status) ->
      match status with
      | Vm.Process.Exited 0 -> ()
      | s ->
        failwith
          (Printf.sprintf "s1: pid %d finished %s" pid
             (match s with
             | Vm.Process.Exited n -> Printf.sprintf "Exited %d" n
             | Vm.Process.Trapped m -> "Trapped " ^ m
             | Vm.Process.Running -> "Running"
             | Vm.Process.Migrating _ -> "Migrating")))
    (Net.Cluster.statuses cluster);
  let quanta =
    Obs.Metrics.counter_value (Net.Cluster.metrics cluster) "sched.quanta"
  in
  let rounds =
    Obs.Metrics.counter_value (Net.Cluster.metrics cluster) "sched.rounds"
  in
  quanta, rounds, wall_s, Net.Cluster.now cluster

(* one warm-up + [iters] timed runs per mode; the simulation is
   deterministic, so quanta/rounds/sim must agree across repetitions —
   report the median wall time *)
let s1_measure ?(iters = 3) case ~legacy =
  ignore (s1_run case ~legacy);
  let samples = Array.init iters (fun _ -> s1_run case ~legacy) in
  let q0, r0, _, sim0 = samples.(0) in
  Array.iter
    (fun (q, r, _, sim) ->
      if q <> q0 || r <> r0 || sim <> sim0 then
        failwith "s1: repetitions diverged (non-deterministic run)")
    samples;
  let walls = Array.map (fun (_, _, w, _) -> w) samples in
  Array.sort compare walls;
  q0, r0, walls.(iters / 2), sim0

let s1_row case ~mode ~quanta ~rounds ~wall_s ~sim_s =
  Printf.sprintf
    "{\"bench\":\"s1\",\"case\":\"%s\",\"mode\":\"%s\",\
     \"quanta\":%d,\"rounds\":%d,\"wall_s\":%.6f,\"sim_s\":%.6f,\
     \"events_per_sec\":%.1f}"
    case.s1_name mode quanta rounds wall_s sim_s
    (float_of_int quanta /. wall_s)

(* rows + per-case (name, scan events/sec, indexed events/sec) *)
let s1_results () =
  List.fold_left
    (fun (rows, speeds) case ->
      let q_scan, r_scan, w_scan, sim_scan = s1_measure case ~legacy:true in
      let q_idx, r_idx, w_idx, sim_idx = s1_measure case ~legacy:false in
      if q_scan <> q_idx || r_scan <> r_idx || sim_scan <> sim_idx then
        failwith "s1: scan and indexed schedulers diverged";
      let rows =
        rows
        @ [ s1_row case ~mode:"scan" ~quanta:q_scan ~rounds:r_scan
              ~wall_s:w_scan ~sim_s:sim_scan;
            s1_row case ~mode:"indexed" ~quanta:q_idx ~rounds:r_idx
              ~wall_s:w_idx ~sim_s:sim_idx ]
      in
      let eps w = float_of_int q_scan /. w in
      rows, speeds @ [ case, eps w_scan, eps w_idx, w_scan, w_idx ])
    ([], []) s1_cases

let s1 () =
  section "S1: scheduler events/sec (indexed vs legacy scan)";
  Printf.printf
    "Each case runs the identical simulation both ways (same quanta, \
     rounds\nand simulated seconds) — only the host wall-clock \
     differs.\n\n";
  let rows, speeds = s1_results () in
  Printf.printf "  %-10s %-9s %-9s %-9s %-11s %-12s %s\n" "case" "mode"
    "procs" "quanta" "wall(s)" "events/sec" "speedup";
  List.iter
    (fun (case, eps_scan, eps_idx, w_scan, w_idx) ->
      let quanta = int_of_float (eps_scan *. w_scan +. 0.5) in
      Printf.printf "  %-10s %-9s %-9d %-9d %-11.4f %-12.0f\n"
        case.s1_name "scan" (2 * case.s1_pairs) quanta w_scan eps_scan;
      Printf.printf "  %-10s %-9s %-9d %-9d %-11.4f %-12.0f %.2fx\n"
        case.s1_name "indexed" (2 * case.s1_pairs) quanta w_idx eps_idx
        (eps_idx /. eps_scan))
    speeds;
  write_lines "BENCH_s1.json" rows;
  Printf.printf "\n  wrote BENCH_s1.json\n";
  print_newline ();
  verdict "identical simulation, faster wall clock (no regression)"
    (List.for_all
       (fun (_, eps_scan, eps_idx, _, _) -> eps_idx >= 0.9 *. eps_scan)
       speeds)

(* --- V1 ----------------------------------------------------------- *)

let v1_kernels =
  [
    ( "compute",
      {|
int main() {
  float s = 0.0; int i;
  for (i = 0; i < 300000; i = i + 1) {
    s = s + (float)(i % 7) * 0.5 - (float)(i % 3) * 0.25;
    s = s * 0.999 + 1.0;
  }
  return (int)s % 101;
}
|} );
    ( "branch",
      {|
int main() {
  int acc = 0; int i;
  for (i = 0; i < 300000; i = i + 1) {
    if (i % 2 == 0) { acc = acc + 1; }
    else { if (i % 3 == 0) { acc = acc + 2; } else { acc = acc - 1; } }
    if (acc > 1000) { acc = acc - 1000; }
  }
  return acc % 101;
}
|} );
    ( "memory",
      {|
int main() {
  int n = 4096;
  float *a = alloc_float(n);
  int i; int k;
  for (i = 0; i < n; i = i + 1) { a[i] = (float)(i % 17); }
  for (k = 0; k < 60; k = k + 1) {
    for (i = 0; i < n - 1; i = i + 1) {
      a[i] = a[i + 1] * 0.5 + a[i] * 0.5;
    }
  }
  return (int)a[7] % 101;
}
|} );
  ]

let v1_compile src =
  match Minic.Driver.compile src with
  | Ok fir -> fir
  | Error e -> failwith (Minic.Driver.error_to_string e)

let v1_exit = function
  | Vm.Process.Exited n -> n
  | _ -> failwith "v1: kernel did not run to completion"

(* one-time translation per kernel, timed once so the translate row can
   report it: codegen -> link -> closure-compile.  Link and compile are
   deliberately OUTSIDE the timed emulation loop below — they are paid
   once per image (and memoized in Migrate.Codecache on the migration
   path), so folding them into per-run wall time would misattribute a
   setup cost to steady-state MIPS. *)
let v1_translate fir =
  let arch = Vm.Arch.cisc32 in
  let masm = Vm.Codegen.compile ~arch fir in
  let linked, link_s = wall (fun () -> Vm.Link.link masm) in
  let compiled, compile_s = wall (fun () -> Vm.Compile.compile linked) in
  masm, linked, compiled, link_s *. 1000., compile_s *. 1000.

(* median-of-[iters] wall time for one emulator mode; returns
   (instrs, wall_s, exit, cycles) *)
let v1_emulate ?(iters = 3) ~masm ~linked ~compiled fir mode =
  let arch = Vm.Arch.cisc32 in
  let sample () =
    let proc = Vm.Process.create ~arch ~seed:11 fir in
    let emu =
      match mode with
      | Vm.Emulator.Compiled -> Vm.Emulator.create ~mode ~compiled masm proc
      | Vm.Emulator.Fast | Vm.Emulator.Baseline ->
        Vm.Emulator.create ~mode ~linked masm proc
    in
    let status, w = wall (fun () -> Vm.Emulator.run emu) in
    Vm.Emulator.instructions emu, w, v1_exit status, proc.Vm.Process.cycles
  in
  ignore (sample ());
  let samples = Array.init iters (fun _ -> sample ()) in
  Array.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) samples;
  samples.(iters / 2)

let v1_interp ?(iters = 3) fir =
  let sample () =
    let proc = Vm.Process.create ~arch:Vm.Arch.cisc32 ~seed:11 fir in
    let status, w = wall (fun () -> Vm.Interp.run proc) in
    w, v1_exit status
  in
  ignore (sample ());
  let samples = Array.init iters (fun _ -> sample ()) in
  Array.sort compare samples;
  samples.(iters / 2)

let v1_row ~case ~mode ~instrs ~wall_s =
  Printf.sprintf
    "{\"bench\":\"v1\",\"case\":\"%s\",\"mode\":\"%s\",\"instrs\":%d,\
     \"wall_s\":%.6f,\"mips\":%.3f}"
    case mode instrs wall_s
    (float_of_int instrs /. wall_s /. 1e6)

(* one-time translation cost row.  wall_s is the combined link+compile
   time (perfcheck's row parser requires the field on every row; the
   translate mode never participates in a ratio pair). *)
let v1_translate_row ~case ~link_ms ~compile_ms =
  Printf.sprintf
    "{\"bench\":\"v1\",\"case\":\"%s\",\"mode\":\"translate\",\"instrs\":0,\
     \"wall_s\":%.6f,\"mips\":0.000,\"link_ms\":%.3f,\"compile_ms\":%.3f}"
    case ((link_ms +. compile_ms) /. 1000.) link_ms compile_ms

let v1_results () =
  List.map
    (fun (case, src) ->
      let fir = v1_compile src in
      let masm, linked, compiled, link_ms, compile_ms = v1_translate fir in
      let run = v1_emulate ~masm ~linked ~compiled fir in
      let i_base, w_base, x_base, c_base = run Vm.Emulator.Baseline in
      let i_fast, w_fast, x_fast, c_fast = run Vm.Emulator.Fast in
      let i_comp, w_comp, x_comp, c_comp = run Vm.Emulator.Compiled in
      if i_base <> i_fast || x_base <> x_fast || c_base <> c_fast then
        failwith ("v1: Baseline and Fast diverged on " ^ case);
      if i_comp <> i_fast || x_comp <> x_fast || c_comp <> c_fast then
        failwith ("v1: Compiled and Fast diverged on " ^ case);
      let w_interp, x_interp = v1_interp fir in
      if x_interp <> x_fast then
        failwith ("v1: interpreter diverged on " ^ case);
      let rows =
        [ v1_row ~case ~mode:"interp" ~instrs:i_fast ~wall_s:w_interp;
          v1_row ~case ~mode:"baseline" ~instrs:i_base ~wall_s:w_base;
          v1_row ~case ~mode:"fast" ~instrs:i_fast ~wall_s:w_fast;
          v1_row ~case ~mode:"compiled" ~instrs:i_comp ~wall_s:w_comp;
          v1_translate_row ~case ~link_ms ~compile_ms ]
      in
      case, rows, i_fast, w_interp, w_base, w_fast, w_comp)
    v1_kernels

let v1 () =
  section "V1: emulator MIPS (baseline vs pre-resolved vs closure-compiled)";
  Printf.printf
    "compute/branch/memory kernels run to completion; instrs is the \
     retired\nMASM instruction count (the interpreter row reuses it for \
     scale).\nBaseline, Fast and Compiled are checked to produce \
     identical exits,\ninstruction counts and cycle counts.  Link and \
     closure-compile run once,\noutside the timed loop; the translate \
     row records that one-time cost.\n\n";
  let results = v1_results () in
  Printf.printf "  %-10s %-10s %-11s %-10s %s\n" "kernel" "mode"
    "instrs" "wall(s)" "MIPS";
  let all_rows =
    List.concat_map
      (fun (case, rows, instrs, w_i, w_b, w_f, w_c) ->
        let mips w = float_of_int instrs /. w /. 1e6 in
        let line mode w =
          Printf.printf "  %-10s %-10s %-11d %-10.4f %.2f\n" case mode
            instrs w (mips w)
        in
        line "interp" w_i;
        line "baseline" w_b;
        line "fast" w_f;
        line "compiled" w_c;
        Printf.printf
          "    speedup fast/baseline %.2fx, compiled/fast %.2fx\n"
          (w_b /. w_f) (w_f /. w_c);
        rows)
      results
  in
  write_lines "BENCH_v1.json" all_rows;
  Printf.printf "\n  wrote BENCH_v1.json\n";
  print_newline ();
  let fast_ok =
    List.for_all (fun (_, _, _, _, w_b, w_f, _) -> w_f <= w_b) results
  in
  let compiled_ok =
    List.length
      (List.filter (fun (_, _, _, _, _, w_f, w_c) -> w_f /. w_c >= 1.5)
         results)
    >= 2
  in
  verdict
    "fast no slower than baseline; compiled >= 1.5x fast on >= 2 kernels"
    (fast_ok && compiled_ok)

(* --- T1 ----------------------------------------------------------- *)

(* Request serving under live-traffic migration: N closed-loop clients
   fire >= 10^5 requests at K registered services addressed by logical
   address, under message loss + duplication, while the services are
   re-homed mid-traffic ("migrate" mode) or left in place ("static"
   mode).  Every run must be exactly-once — zero loss, zero duplicate
   service work, zero reply reordering — and in migrate mode the
   senders must demonstrably rebind (Recipient_moved notices consumed,
   forwarder relays observed and then quiescing). *)

let t1_cfg =
  { Mcc.Gridapp.Serve.clients = 8; services = 4;
    requests_per_client = 12_500; work_us = 5; skew = false;
    speculative = false }

let t1_seeds = [ 11; 23 ]

let t1_plan seed =
  { Net.Faults.none with
    Net.Faults.f_seed = seed;
    f_loss = 0.05;
    f_dup = 0.02;
    f_jitter_s = 0.000005;
    f_retransmit_s = 0.00005 }

type t1_sample = {
  t1_case : string;
  t1_mode : string;
  t1_wall : float;
  t1_sim : float;
  t1_report : Mcc.Gridapp.Serve.report;
  t1_exact : bool;
}

let t1_run ~seed ~migrate =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = 6;
        seed;
        net = Some (Net.Simnet.create ~latency_us:5.0 ());
        faults = t1_plan seed }
  in
  let d = Mcc.Gridapp.Serve.deploy ~engine:`Masm cluster t1_cfg in
  let r, wall_s =
    wall (fun () ->
        if migrate then
          Mcc.Gridapp.Serve.run ~migrate_every_s:0.004 ~migrations:10 d
        else Mcc.Gridapp.Serve.run d)
  in
  { t1_case = Printf.sprintf "serve-s%d" seed;
    t1_mode = (if migrate then "migrate" else "static");
    t1_wall = wall_s;
    t1_sim = Net.Cluster.now cluster;
    t1_report = r;
    t1_exact = Mcc.Gridapp.Serve.exactly_once d r }

let t1_row s =
  let r = s.t1_report in
  Printf.sprintf
    "{\"bench\":\"t1\",\"case\":\"%s\",\"mode\":\"%s\",\
     \"requests\":%d,\"migrations\":%d,\"forwarded\":%d,\
     \"rebinds\":%d,\"p50_ms\":%.4f,\"p90_ms\":%.4f,\"p99_ms\":%.4f,\
     \"mean_ms\":%.4f,\"wall_s\":%.6f,\"sim_s\":%.6f,\
     \"req_per_sec\":%.1f}"
    s.t1_case s.t1_mode r.Mcc.Gridapp.Serve.rp_requests r.rp_migrations
    r.rp_forwarded r.rp_rebinds r.rp_p50_ms r.rp_p90_ms r.rp_p99_ms
    r.rp_mean_ms s.t1_wall s.t1_sim
    (float_of_int r.rp_requests /. s.t1_wall)

let t1_results () =
  List.concat_map
    (fun seed ->
      [ t1_run ~seed ~migrate:false; t1_run ~seed ~migrate:true ])
    t1_seeds

let t1 () =
  section "T1: request serving under live-traffic migration (registry)";
  Printf.printf
    "%d closed-loop clients x %d requests (= %d total) at %d services\n\
     addressed by logical address, with 5%% loss + 2%% duplication; the\n\
     migrate rows re-home a service round-robin every 4 simulated ms\n\
     while requests are in flight.  Latency quantiles come from the\n\
     cluster's app.latency_seconds histogram.\n\n"
    t1_cfg.Mcc.Gridapp.Serve.clients
    t1_cfg.Mcc.Gridapp.Serve.requests_per_client
    (t1_cfg.Mcc.Gridapp.Serve.clients
    * t1_cfg.Mcc.Gridapp.Serve.requests_per_client)
    t1_cfg.Mcc.Gridapp.Serve.services;
  let samples = t1_results () in
  Printf.printf "  %-11s %-8s %-8s %-6s %-6s %-8s %-8s %-8s %-8s %-9s %s\n"
    "case" "mode" "requests" "moves" "fwd" "rebinds" "p50(ms)" "p90(ms)"
    "p99(ms)" "mean(ms)" "wall(s)";
  List.iter
    (fun s ->
      let r = s.t1_report in
      Printf.printf
        "  %-11s %-8s %-8d %-6d %-6d %-8d %-8.3f %-8.3f %-8.3f %-9.3f \
         %.3f\n"
        s.t1_case s.t1_mode r.Mcc.Gridapp.Serve.rp_requests r.rp_migrations
        r.rp_forwarded r.rp_rebinds r.rp_p50_ms r.rp_p90_ms r.rp_p99_ms
        r.rp_mean_ms s.t1_wall)
    samples;
  let rows = List.map t1_row samples in
  write_lines "BENCH_t1.json" rows;
  Printf.printf "\n  wrote BENCH_t1.json\n";
  print_newline ();
  let migrates =
    List.filter (fun s -> String.equal s.t1_mode "migrate") samples
  in
  let exact_ok = List.for_all (fun s -> s.t1_exact) samples in
  let moves_ok =
    List.for_all
      (fun s -> s.t1_report.Mcc.Gridapp.Serve.rp_migrations > 0)
      migrates
  in
  let rebind_ok =
    List.for_all
      (fun s ->
        s.t1_report.Mcc.Gridapp.Serve.rp_forwarded > 0
        && s.t1_report.Mcc.Gridapp.Serve.rp_rebinds > 0)
      migrates
  in
  verdict
    (Printf.sprintf "every request served exactly once (%d runs, 2 seeds)"
       (List.length samples))
    exact_ok;
  verdict "migrations landed mid-traffic on every migrate run" moves_ok;
  verdict "senders rebound after each move (forwarders relayed, then \
           notices consumed)"
    rebind_ok;
  (* unlike the perf meters these are correctness gates: losing,
     duplicating or reordering a request must fail the run *)
  if not (exact_ok && moves_ok && rebind_ok) then exit 1;
  samples

let t1_cmd () = ignore (t1 ())

(* ================================================================== *)
(* T2: load-aware rebalancing of a skewed serving workload             *)
(* ================================================================== *)

(* The placement-policy meter.  The T1 serving workload again, but the
   request stream is SKEWED — 4 of every 5 requests chase a hot service
   whose identity shifts every phase — and the services start from the
   deliberately bad placement (`Pack 1`: all K crammed onto node 0 of a
   64-node cluster).  The "off" rows leave them there; the "on" rows
   let the balance engine discover the pile-up from its gauges and
   spread it via Cluster.Move (reason Policy).  The policy must (a)
   converge — a bounded burst of moves early, then silence, no
   ping-pong as the hot service shifts — and (b) beat the packed
   placement on simulated completion time, paying back the cold
   compile each first visit to a node costs.  Exactly-once still holds
   under loss + duplication: policy moves ride the same forwarder /
   rebind protocol as explicit ones. *)

let t2_cfg =
  { Mcc.Gridapp.Serve.clients = 16; services = 6;
    requests_per_client = 600; work_us = 400; skew = true;
    speculative = false }

let t2_nodes = 64
let t2_seeds = [ 11; 23 ]

let t2_plan seed =
  { Net.Faults.none with
    Net.Faults.f_seed = seed;
    f_loss = 0.02;
    f_dup = 0.01;
    f_jitter_s = 0.000002;
    f_retransmit_s = 0.00005 }

type t2_sample = {
  t2_case : string;
  t2_mode : string;
  t2_wall : float;
  t2_sim : float;
  t2_report : Mcc.Gridapp.Serve.report;
  t2_exact : bool;
  t2_ticks : int;
  t2_proposals : int;
  t2_moves : int;
  t2_spread : float;
  t2_last_move : float;
}

let t2_run ~seed ~policy =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = t2_nodes;
        seed;
        net = Some (Net.Simnet.create ~latency_us:5.0 ());
        faults = t2_plan seed;
        balance = { Net.Balance.Config.default with enabled = policy } }
  in
  let d = Mcc.Gridapp.Serve.deploy ~placement:(`Pack 1) cluster t2_cfg in
  let r, wall_s = wall (fun () -> Mcc.Gridapp.Serve.run d) in
  let m = Net.Cluster.metrics cluster in
  { t2_case = Printf.sprintf "skew-s%d" seed;
    t2_mode = (if policy then "on" else "off");
    t2_wall = wall_s;
    t2_sim = Net.Cluster.now cluster;
    t2_report = r;
    t2_exact = Mcc.Gridapp.Serve.exactly_once d r;
    t2_ticks = Obs.Metrics.counter_value m "balance.ticks";
    t2_proposals = Obs.Metrics.counter_value m "balance.proposals";
    t2_moves = Obs.Metrics.counter_value m "balance.moves";
    t2_spread = Obs.Metrics.gauge_read m "balance.spread";
    t2_last_move = Obs.Metrics.gauge_read m "balance.last_move_s" }

let t2_row s =
  let r = s.t2_report in
  Printf.sprintf
    "{\"bench\":\"t2\",\"case\":\"%s\",\"mode\":\"%s\",\
     \"requests\":%d,\"ticks\":%d,\"proposals\":%d,\"moves\":%d,\
     \"spread\":%.6f,\"last_move_s\":%.6f,\"p50_ms\":%.4f,\
     \"p99_ms\":%.4f,\"wall_s\":%.6f,\"sim_s\":%.6f,\
     \"req_per_sim_sec\":%.1f}"
    s.t2_case s.t2_mode r.Mcc.Gridapp.Serve.rp_requests s.t2_ticks
    s.t2_proposals s.t2_moves s.t2_spread s.t2_last_move r.rp_p50_ms
    r.rp_p99_ms s.t2_wall s.t2_sim
    (float_of_int r.Mcc.Gridapp.Serve.rp_requests /. s.t2_sim)

let t2_results () =
  List.concat_map
    (fun seed -> [ t2_run ~seed ~policy:false; t2_run ~seed ~policy:true ])
    t2_seeds

let t2_gate samples =
  (* correctness gates: exactly-once in both modes, the policy actually
     moved something, the off rows never did *)
  let exact_ok = List.for_all (fun s -> s.t2_exact) samples in
  let on_rows = List.filter (fun s -> String.equal s.t2_mode "on") samples in
  let off_rows =
    List.filter (fun s -> String.equal s.t2_mode "off") samples
  in
  let moved_ok = List.for_all (fun s -> s.t2_moves > 0) on_rows in
  let off_ok = List.for_all (fun s -> s.t2_moves = 0) off_rows in
  (* convergence: moves quiesce in the first half of the run and stay
     well below the tick count (a ping-ponging policy moves every
     period) *)
  let converged_ok =
    List.for_all
      (fun s ->
        s.t2_last_move <= 0.5 *. s.t2_sim && s.t2_moves < s.t2_ticks)
      on_rows
  in
  (exact_ok, moved_ok, off_ok, converged_ok)

let t2 () =
  section "T2: load-aware rebalancing of a skewed serving workload";
  Printf.printf
    "%d closed-loop clients x %d requests at %d services on %d nodes,\n\
     ALL services packed onto node 0, with a phase-shifting hot service\n\
     taking 4/5 of the stream, under 2%% loss + 1%% duplication.  The\n\
     \"on\" rows enable the balance engine (period %gs, tolerance %g,\n\
     budget %d/node); every policy move goes through Cluster.Move and\n\
     must preserve exactly-once.\n\n"
    t2_cfg.Mcc.Gridapp.Serve.clients
    t2_cfg.Mcc.Gridapp.Serve.requests_per_client
    t2_cfg.Mcc.Gridapp.Serve.services t2_nodes
    Net.Balance.Config.default.Net.Balance.Config.period_s
    Net.Balance.Config.default.Net.Balance.Config.tolerance
    Net.Balance.Config.default.Net.Balance.Config.move_budget;
  let samples = t2_results () in
  Printf.printf "  %-9s %-5s %-8s %-6s %-6s %-9s %-10s %-8s %-8s %s\n"
    "case" "mode" "requests" "ticks" "moves" "last_move" "spread" "p99(ms)"
    "sim(s)" "wall(s)";
  List.iter
    (fun s ->
      Printf.printf
        "  %-9s %-5s %-8d %-6d %-6d %-9.3f %-10.4f %-8.3f %-8.3f %.3f\n"
        s.t2_case s.t2_mode s.t2_report.Mcc.Gridapp.Serve.rp_requests
        s.t2_ticks s.t2_moves s.t2_last_move s.t2_spread
        s.t2_report.Mcc.Gridapp.Serve.rp_p99_ms s.t2_sim s.t2_wall)
    samples;
  let rows = List.map t2_row samples in
  write_lines "BENCH_t2.json" rows;
  Printf.printf "\n  wrote BENCH_t2.json\n";
  print_newline ();
  let exact_ok, moved_ok, off_ok, converged_ok = t2_gate samples in
  (* perf verdict: policy-on must finish the same request load in less
     simulated time than the packed placement, per seed *)
  let faster_ok =
    List.for_all
      (fun seed ->
        let sim mode =
          List.find
            (fun s ->
              String.equal s.t2_case (Printf.sprintf "skew-s%d" seed)
              && String.equal s.t2_mode mode)
            samples
          |> fun s -> s.t2_sim
        in
        sim "on" < sim "off")
      t2_seeds
  in
  verdict
    (Printf.sprintf "every request served exactly once (%d runs, 2 seeds)"
       (List.length samples))
    exact_ok;
  verdict "policy moved services off the packed node; static rows never \
           moved"
    (moved_ok && off_ok);
  verdict "policy converged: moves quiesced in the first half, no \
           per-period ping-pong"
    converged_ok;
  verdict "policy-on beat the packed placement on simulated time (both \
           seeds)"
    faster_ok;
  if not (exact_ok && moved_ok && off_ok && converged_ok) then exit 1;
  samples

let t2_cmd () = ignore (t2 ())

(* ================================================================== *)
(* F5: speculative exactly-once serving under fault plans              *)
(* ================================================================== *)

(* The distributed-speculation meter.  The T1 serving workload, but the
   "on" rows run the handlers SPECULATIVELY: the service replies before
   its dedup state is durable and commits through the epoch-fenced 2PC
   (dspec_open / dspec_commit), with services re-homed mid-region, under
   loss + duplication + crash_in_commit (a participant crashing between
   its prepare-ack and the commit receipt, voiding the ack by epoch
   bump).  Every crashed round must abort, roll every participant back,
   compensate the mailboxes, replay, and still serve each request
   exactly once.  The "off" rows run the same plan non-speculatively
   (crash_in_commit never draws without commit rounds), so the sim-time
   ratio isolates what the protocol costs — and the gate pins the
   protocol's correctness counters. *)

let f5_cfg =
  { Mcc.Gridapp.Serve.clients = 8; services = 4;
    requests_per_client = 1_500; work_us = 5; skew = false;
    speculative = true }

let f5_nodes = 6
let f5_seeds = [ 11; 23 ]

let f5_plan seed =
  { Net.Faults.none with
    Net.Faults.f_seed = seed;
    f_loss = 0.05;
    f_dup = 0.02;
    f_crash_in_commit = 0.2 }

type f5_sample = {
  f5_case : string;
  f5_mode : string;
  f5_wall : float;
  f5_sim : float;
  f5_report : Mcc.Gridapp.Serve.report;
  f5_exact : bool;
  f5_opened : int;
  f5_prepares : int;
  f5_commits : int;
  f5_aborts : int;
  f5_fences : int;
  f5_compensated : int;
  f5_audit_ok : bool;
}

(* Zero-partial-commit audit over the trace window: no transaction both
   commits and aborts; every abort decided by a live coordinator is
   followed by that coordinator's own region rollback and by mailbox
   compensation for the transaction.  (The ring keeps the newest
   window; an abort whose evidence predates the window is dropped with
   the abort itself, so the audit stays sound under truncation.) *)
let f5_audit events =
  let committed = Hashtbl.create 64 and aborted = Hashtbl.create 64 in
  List.iter
    (fun (ev : Obs.Trace.event) ->
      match ev.Obs.Trace.kind with
      | Obs.Trace.Dspec_commit { txn; _ } -> Hashtbl.replace committed txn ()
      | Obs.Trace.Dspec_abort { txn; _ } -> Hashtbl.replace aborted txn ()
      | _ -> ())
    events;
  let disjoint =
    Hashtbl.fold
      (fun txn () ok -> ok && not (Hashtbl.mem committed txn))
      aborted true
  in
  let aborts_resolved =
    List.for_all
      (fun (ev : Obs.Trace.event) ->
        match ev.Obs.Trace.kind with
        | Obs.Trace.Dspec_abort { txn; reason; _ }
          when reason = "fence" || reason = "crash_in_commit" ->
          List.exists
            (fun (e2 : Obs.Trace.event) ->
              e2.Obs.Trace.pid = ev.Obs.Trace.pid
              && e2.Obs.Trace.time >= ev.Obs.Trace.time
              &&
              match e2.Obs.Trace.kind with
              | Obs.Trace.Spec_rollback _ -> true
              | _ -> false)
            events
          && List.exists
               (fun (e2 : Obs.Trace.event) ->
                 match e2.Obs.Trace.kind with
                 | Obs.Trace.Dspec_compensate { txn = x; _ } -> x = txn
                 | _ -> false)
               events
        | _ -> true)
      events
  in
  disjoint && aborts_resolved

let f5_run ~seed ~speculative =
  let cluster =
    Net.Cluster.create_cfg
      { Net.Cluster.Config.default with
        node_count = f5_nodes;
        seed;
        net = Some (Net.Simnet.create ~latency_us:5.0 ());
        faults = f5_plan seed }
  in
  let d =
    Mcc.Gridapp.Serve.deploy ~engine:`Masm cluster
      { f5_cfg with Mcc.Gridapp.Serve.speculative }
  in
  let r, wall_s =
    wall (fun () ->
        Mcc.Gridapp.Serve.run ~migrate_every_s:0.004 ~migrations:10 d)
  in
  let m = Net.Cluster.metrics cluster in
  let c name = Obs.Metrics.counter_value m name in
  { f5_case = Printf.sprintf "spec-s%d" seed;
    f5_mode = (if speculative then "on" else "off");
    f5_wall = wall_s;
    f5_sim = Net.Cluster.now cluster;
    f5_report = r;
    f5_exact = Mcc.Gridapp.Serve.exactly_once d r;
    f5_opened = c "dspec.opened";
    f5_prepares = c "dspec.prepares";
    f5_commits = c "dspec.commits";
    f5_aborts = c "dspec.aborts";
    f5_fences = c "dspec.fence_rejections";
    f5_compensated = c "dspec.compensated";
    f5_audit_ok = f5_audit (Obs.Trace.events (Net.Cluster.trace cluster)) }

let f5_row s =
  let r = s.f5_report in
  Printf.sprintf
    "{\"bench\":\"f5\",\"case\":\"%s\",\"mode\":\"%s\",\
     \"requests\":%d,\"migrations\":%d,\"opened\":%d,\"prepares\":%d,\
     \"commits\":%d,\"aborts\":%d,\"fence_rejections\":%d,\
     \"compensated\":%d,\"p50_ms\":%.4f,\"p99_ms\":%.4f,\
     \"wall_s\":%.6f,\"sim_s\":%.6f,\"req_per_sim_sec\":%.1f}"
    s.f5_case s.f5_mode r.Mcc.Gridapp.Serve.rp_requests r.rp_migrations
    s.f5_opened s.f5_prepares s.f5_commits s.f5_aborts s.f5_fences
    s.f5_compensated r.rp_p50_ms r.rp_p99_ms s.f5_wall s.f5_sim
    (float_of_int r.Mcc.Gridapp.Serve.rp_requests /. s.f5_sim)

let f5_results () =
  List.concat_map
    (fun seed ->
      [ f5_run ~seed ~speculative:false; f5_run ~seed ~speculative:true ])
    f5_seeds

let f5_gate samples =
  let total =
    f5_cfg.Mcc.Gridapp.Serve.clients
    * f5_cfg.Mcc.Gridapp.Serve.requests_per_client
  in
  let exact_ok = List.for_all (fun s -> s.f5_exact) samples in
  let on_rows = List.filter (fun s -> String.equal s.f5_mode "on") samples in
  let moved_ok =
    List.for_all
      (fun s -> s.f5_report.Mcc.Gridapp.Serve.rp_migrations > 0)
      on_rows
  in
  (* the protocol counters the smoke asserts nonzero, plus exact
     conservation: every opened transaction resolved one way, one
     commit per unique request *)
  let counters_ok =
    List.for_all
      (fun s ->
        s.f5_prepares > 0 && s.f5_commits = total && s.f5_aborts > 0
        && s.f5_fences > 0
        && s.f5_opened = s.f5_commits + s.f5_aborts)
      on_rows
  in
  let audit_ok = List.for_all (fun s -> s.f5_audit_ok) on_rows in
  (exact_ok, moved_ok, counters_ok, audit_ok)

let f5 () =
  section "F5: speculative exactly-once serving under fault plans";
  Printf.printf
    "%d closed-loop clients x %d requests (= %d total) at %d services\n\
     on %d nodes.  The \"on\" rows serve SPECULATIVELY: reply before\n\
     the dedup write is durable, commit via the epoch-fenced 2PC, with\n\
     services re-homed every 4 simulated ms, under 5%% loss + 2%% dup +\n\
     20%% crash_in_commit (a participant crashes between prepare-ack\n\
     and commit receipt; the epoch bump voids its ack).  Every abort\n\
     must roll all participants back, compensate mailboxes, replay —\n\
     and still serve each request exactly once.\n\n"
    f5_cfg.Mcc.Gridapp.Serve.clients
    f5_cfg.Mcc.Gridapp.Serve.requests_per_client
    (f5_cfg.Mcc.Gridapp.Serve.clients
    * f5_cfg.Mcc.Gridapp.Serve.requests_per_client)
    f5_cfg.Mcc.Gridapp.Serve.services f5_nodes;
  let samples = f5_results () in
  Printf.printf "  %-9s %-5s %-8s %-6s %-7s %-7s %-7s %-7s %-8s %-8s %s\n"
    "case" "mode" "requests" "moves" "opened" "commits" "aborts" "fences"
    "p99(ms)" "sim(s)" "wall(s)";
  List.iter
    (fun s ->
      Printf.printf
        "  %-9s %-5s %-8d %-6d %-7d %-7d %-7d %-7d %-8.3f %-8.3f %.3f\n"
        s.f5_case s.f5_mode s.f5_report.Mcc.Gridapp.Serve.rp_requests
        s.f5_report.Mcc.Gridapp.Serve.rp_migrations s.f5_opened s.f5_commits
        s.f5_aborts s.f5_fences s.f5_report.Mcc.Gridapp.Serve.rp_p99_ms
        s.f5_sim s.f5_wall)
    samples;
  let rows = List.map f5_row samples in
  write_lines "BENCH_f5.json" rows;
  Printf.printf "\n  wrote BENCH_f5.json\n";
  print_newline ();
  let exact_ok, moved_ok, counters_ok, audit_ok = f5_gate samples in
  verdict
    (Printf.sprintf "every request served exactly once (%d runs, 2 seeds)"
       (List.length samples))
    exact_ok;
  verdict "services re-homed mid-region on every speculative run" moved_ok;
  verdict "protocol counters conserve: prepares/aborts/fences nonzero, \
           opened = commits + aborts, one commit per unique request"
    counters_ok;
  verdict "trace audit: zero partial commits (aborts disjoint from \
           commits; every abort rolled back and compensated)"
    audit_ok;
  if not (exact_ok && moved_ok && counters_ok && audit_ok) then exit 1;
  samples

let f5_cmd () = ignore (f5 ())

(* --- perfcheck ----------------------------------------------------- *)

(* speedup ratio per (bench, case) from a row list: fast mode
   events-per-unit-wall over slow mode *)
let ratios_of_rows rows =
  let field line name =
    match json_field line name with
    | Some v -> v
    | None -> failwith ("perfcheck: missing field " ^ name ^ " in " ^ line)
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun line ->
      let bench = field line "bench" in
      let case = field line "case" in
      let mode = field line "mode" in
      (* t2 and f5 are judged on SIMULATED completion time — the
         policy's (resp. protocol's) cost is a property of the modelled
         cluster, not of host wall clock *)
      let cost =
        float_of_string
          (field line
             (if String.equal bench "t2" || String.equal bench "f5" then
                "sim_s"
              else "wall_s"))
      in
      Hashtbl.replace tbl (bench, case, mode) cost)
    rows;
  let pairs =
    Hashtbl.fold
      (fun (bench, case, _) _ acc ->
        if List.mem (bench, case) acc then acc else (bench, case) :: acc)
      tbl []
  in
  List.concat_map
    (fun (bench, case) ->
      let get mode = Hashtbl.find_opt tbl (bench, case, mode) in
      let pair key slow fast =
        match slow, fast with
        | Some s, Some f -> [ (bench, key), s /. f ]
        | _ -> []
      in
      if String.equal bench "s1" then pair case (get "scan") (get "indexed")
      else if String.equal bench "t1" then
        (* ratio = wall_static / wall_migrate: a regression on the
           forward/rebind serving path inflates the migrate wall and
           drags the ratio below the gate *)
        pair case (get "static") (get "migrate")
      else if String.equal bench "t2" then
        (* ratio = sim_off / sim_on: the policy's throughput edge over
           the packed placement; a regressed planner (churn, failed
           convergence) drags it below the gate *)
        pair case (get "off") (get "on")
      else if String.equal bench "f5" then
        (* ratio = sim_off / sim_on: what the speculative 2PC costs the
           serving path under the same fault plan; a regressed protocol
           (abort storms, fence thrash, slow compensation) drags the
           on-row sim time up and the ratio below the gate *)
        pair case (get "off") (get "on")
      else
        (* v1 gates two tiers: the pre-resolved fast path over the
           baseline loop, and the closure-compiled tier over fast (the
           superinstruction win; a fusion regression drags it below the
           gate) *)
        pair case (get "baseline") (get "fast")
        @ pair (case ^ ":compiled") (get "fast") (get "compiled"))
    (List.sort compare pairs)

let perfcheck () =
  section "PERFCHECK: speedup-ratio regression gate";
  let check name fresh_rows baseline_path =
    match read_lines baseline_path with
    | None ->
      Printf.printf "  %s: no baseline at %s — SKIP (commit one)\n" name
        baseline_path;
      true
    | Some baseline_rows ->
      let fresh = ratios_of_rows fresh_rows in
      let committed = ratios_of_rows baseline_rows in
      List.for_all
        (fun (key, base_ratio) ->
          match List.assoc_opt key fresh with
          | None ->
            Printf.printf "  %s: case %s/%s missing from fresh run [FAIL]\n"
              name (fst key) (snd key);
            false
          | Some ratio ->
            let ok = ratio >= 0.7 *. base_ratio in
            Printf.printf
              "  %s %s/%s: speedup %.2fx vs committed %.2fx %s\n" name
              (fst key) (snd key) ratio base_ratio
              (if ok then "[PASS]" else "[FAIL: regressed > 30%]");
            ok)
        committed
  in
  let s1_rows, _ = s1_results () in
  write_lines "BENCH_s1.json" s1_rows;
  let v1_rows =
    List.concat_map (fun (_, rows, _, _, _, _, _) -> rows) (v1_results ())
  in
  write_lines "BENCH_v1.json" v1_rows;
  let t1_samples = t1_results () in
  if not (List.for_all (fun s -> s.t1_exact) t1_samples) then begin
    Printf.printf "  t1: exactly-once violated in fresh run [FAIL]\n";
    exit 1
  end;
  let t1_rows = List.map t1_row t1_samples in
  write_lines "BENCH_t1.json" t1_rows;
  let t2_samples = t2_results () in
  let t2_exact, t2_moved, t2_off, t2_conv = t2_gate t2_samples in
  if not (t2_exact && t2_moved && t2_off && t2_conv) then begin
    Printf.printf
      "  t2: correctness/convergence gate violated in fresh run [FAIL]\n";
    exit 1
  end;
  let t2_rows = List.map t2_row t2_samples in
  write_lines "BENCH_t2.json" t2_rows;
  let f5_samples = f5_results () in
  let f5_exact, f5_moved, f5_counters, f5_auditok = f5_gate f5_samples in
  if not (f5_exact && f5_moved && f5_counters && f5_auditok) then begin
    Printf.printf
      "  f5: exactly-once/counter/audit gate violated in fresh run [FAIL]\n";
    exit 1
  end;
  let f5_rows = List.map f5_row f5_samples in
  write_lines "BENCH_f5.json" f5_rows;
  let ok_s1 = check "s1" s1_rows "bench/baselines/BENCH_s1.json" in
  let ok_v1 = check "v1" v1_rows "bench/baselines/BENCH_v1.json" in
  let ok_t1 = check "t1" t1_rows "bench/baselines/BENCH_t1.json" in
  let ok_t2 = check "t2" t2_rows "bench/baselines/BENCH_t2.json" in
  let ok_f5 = check "f5" f5_rows "bench/baselines/BENCH_f5.json" in
  print_newline ();
  verdict "no perf regression > 30% vs committed baselines"
    (ok_s1 && ok_v1 && ok_t1 && ok_t2 && ok_f5);
  if not (ok_s1 && ok_v1 && ok_t1 && ok_t2 && ok_f5) then exit 1

(* ================================================================== *)
(* Driver                                                              *)
(* ================================================================== *)

(* e2/e3/e4 share one sweep; the canonical key deduplicates them *)
let experiments =
  [
    "e1", ("e1", e1);
    "e1c", ("e1c", e1c);
    "e1d", ("e1d", e1d);
    "e2", ("e2_e4", e2_e4);
    "e3", ("e2_e4", e2_e4);
    "e4", ("e2_e4", e2_e4);
    "e5", ("e5", e5);
    "f1", ("f1", f1);
    "f2", ("f2", f2);
    "f2b", ("f2b", f2b);
    "f3", ("f3", f3);
    "f4", ("f4", f4);
    "a1", ("a1", a1);
    "a2", ("a2", a2);
    (* micro-benchmark, not part of the default paper-reproduction run *)
    "m1", ("m1", m1);
    (* perf meters for the scheduler/VM fast paths (BENCH_*.json) *)
    "s1", ("s1", s1);
    "v1", ("v1", v1);
    (* serving-under-migration meter: latency quantiles + exactly-once
       gate for the registry's forward/notify/rebind protocol *)
    "t1", ("t1", t1_cmd);
    (* placement-policy meter: skewed stream, packed start, rebalance
       convergence + throughput policy-on vs policy-off *)
    "t2", ("t2", t2_cmd);
    (* distributed-speculation meter: speculative exactly-once serving
       under loss+dup+crash_in_commit with migrating services; gates
       the 2PC correctness counters and the zero-partial-commit trace
       audit *)
    "f5", ("f5", f5_cmd);
    (* regression gate: re-measures s1+v1+t1+t2+f5 and compares speedup
       ratios against bench/baselines/*.json; exits 1 on > 30%
       regression *)
    "perfcheck", ("perfcheck", perfcheck);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ ->
      [ "e1"; "e1c"; "e1d"; "e2"; "e5"; "f1"; "f2"; "f2b"; "f3"; "f4"; "a1";
        "a2"; "s1"; "v1"; "t1"; "t2"; "f5" ]
  in
  print_endline
    "Mojave Compiler reproduction — benchmark harness (paper: Smith, \
     Tapus, Hickey, IPPS 2007)";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some (key, f) ->
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          f ()
        end
      | None -> Printf.eprintf "unknown experiment %s\n" id)
    requested;
  print_newline ()
