(* The mcc command-line driver.

     mcc compile FILE [--fir] [-S]         check / dump FIR or MASM
     mcc run FILE [--backend ...] [--arch ...]
     mcc resume IMAGE [--trusted]          execute a checkpoint image
     mcc grid [--ranks N] [--fail] [--trace FILE]   the Figure 2 demo
     mcc grid --serve-bench [--clients N] [--services K] [--requests N]
              [--migrations N] [--migrate-every S]   request serving under
                                                     live-traffic migration

   [run] services migration requests locally: checkpoint://path and
   suspend://path write resumable image files to disk (the paper's
   "checkpoints formatted as executable files" — `mcc resume FILE` runs
   them); mcc://host targets are unreachable from the standalone CLI and
   exercise the paper's failed-migration semantics (the process continues
   locally, unaware). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

type lang = C | Ml | Pas

let detect_lang ~lang_flag path =
  match lang_flag with
  | Some "c" -> C
  | Some "ml" -> Ml
  | Some ("pas" | "pascal") -> Pas
  | Some other -> failwith ("unknown language " ^ other)
  | None ->
    if Filename.check_suffix path ".ml" then Ml
    else if Filename.check_suffix path ".pas" then Pas
    else C (* .c and everything else *)

let compile_file ~lang_flag ~optimize path =
  let src = read_file path in
  match detect_lang ~lang_flag path with
  | C -> (
    match Minic.Driver.compile ~optimize src with
    | Ok fir -> fir
    | Error e -> failwith (Minic.Driver.error_to_string e))
  | Ml -> (
    match Miniml.Driver.compile ~optimize src with
    | Ok fir -> fir
    | Error e -> failwith (Miniml.Driver.error_to_string e))
  | Pas -> (
    match Pascal.Driver.compile ~optimize src with
    | Ok fir -> fir
    | Error e -> failwith (Pascal.Driver.error_to_string e))

let arch_of_string = function
  | "cisc32" -> Vm.Arch.cisc32
  | "risc64" -> Vm.Arch.risc64
  | other -> failwith ("unknown architecture " ^ other ^ " (cisc32|risc64)")

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let lang_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lang" ] ~docv:"LANG" ~doc:"Source language: c or ml \
                                         (default: by extension).")

let no_opt_arg =
  Arg.(value & flag & info [ "no-opt" ] ~doc:"Disable the FIR optimizer.")

let arch_arg =
  Arg.(
    value & opt string "cisc32"
    & info [ "arch" ] ~docv:"ARCH" ~doc:"Target architecture: cisc32 or \
                                         risc64.")

(* ------------------------------------------------------------------ *)
(* mcc compile                                                         *)
(* ------------------------------------------------------------------ *)

let compile_cmd =
  let dump_fir =
    Arg.(value & flag & info [ "fir" ] ~doc:"Print the FIR.")
  in
  let dump_masm =
    Arg.(value & flag & info [ "S" ] ~doc:"Print the generated MASM.")
  in
  let action file lang_flag no_opt dump_fir dump_masm arch =
    try
      let fir = compile_file ~lang_flag ~optimize:(not no_opt) file in
      if dump_fir then print_string (Fir.Pp.program_to_string fir);
      if dump_masm then begin
        let image = Vm.Codegen.compile ~arch:(arch_of_string arch) fir in
        print_string (Vm.Masm.image_to_string image)
      end;
      if not (dump_fir || dump_masm) then
        Printf.printf "%s: ok (%d FIR functions, %d nodes)\n" file
          (Fir.Ast.fun_count fir) (Fir.Ast.program_size fir);
      0
    with Failure m ->
      Printf.eprintf "mcc: %s\n" m;
      1
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a source file to FIR/MASM.")
    Term.(
      const action $ file_arg $ lang_arg $ no_opt_arg $ dump_fir $ dump_masm
      $ arch_arg)

(* ------------------------------------------------------------------ *)
(* mcc masm                                                            *)
(* ------------------------------------------------------------------ *)

(* Static MASM inspection.  [--stats] prints the opcode and
   adjacent-pair histograms that drive the closure compiler's fusion
   set: the pairs that dominate real kernels are the ones worth folding
   into a single closure. *)
let masm_cmd =
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print static opcode and adjacent-pair histograms instead \
                of the listing.")
  in
  let action file lang_flag no_opt stats arch =
    try
      let fir = compile_file ~lang_flag ~optimize:(not no_opt) file in
      let image = Vm.Codegen.compile ~arch:(arch_of_string arch) fir in
      if stats then begin
        let opcodes, pairs = Vm.Masm.stats image in
        let total = List.fold_left (fun a (_, n) -> a + n) 0 opcodes in
        Printf.printf "%d instructions\n\nopcode histogram:\n" total;
        List.iter
          (fun (name, n) ->
            Printf.printf "  %-16s %8d  %5.1f%%\n" name n
              (100.0 *. float_of_int n /. float_of_int (max 1 total)))
          opcodes;
        Printf.printf "\nadjacent-pair histogram (top 20):\n";
        List.iteri
          (fun i (pair, n) ->
            if i < 20 then Printf.printf "  %-28s %8d\n" pair n)
          pairs
      end
      else print_string (Vm.Masm.image_to_string image);
      0
    with Failure m ->
      Printf.eprintf "mcc: %s\n" m;
      1
  in
  Cmd.v
    (Cmd.info "masm"
       ~doc:"Dump generated MASM, or its static opcode/pair histograms.")
    Term.(
      const action $ file_arg $ lang_arg $ no_opt_arg $ stats_arg $ arch_arg)

(* ------------------------------------------------------------------ *)
(* mcc run                                                             *)
(* ------------------------------------------------------------------ *)

(* Drive a process to completion, servicing migration requests against
   the local filesystem.  [routes] maps migration hosts to spool
   directories served by `mcc serve` (the file-spool stand-in for the
   paper's TCP migration server). *)
let rec drive ?(routes = []) step_fn proc =
  match proc.Vm.Process.status with
  | Vm.Process.Running ->
    step_fn ();
    drive ~routes step_fn proc
  | Vm.Process.Exited n -> n
  | Vm.Process.Trapped m ->
    Printf.eprintf "mcc: process trapped: %s\n" m;
    2
  | Vm.Process.Migrating req -> (
    match Migrate.Protocol.parse req.Vm.Process.m_target with
    | Migrate.Protocol.Checkpoint_to path ->
      let packed = Migrate.Pack.pack_request proc in
      write_file path packed.Migrate.Pack.p_bytes;
      Printf.eprintf "mcc: checkpoint written to %s (%d bytes)\n" path
        (String.length packed.Migrate.Pack.p_bytes);
      Vm.Process.migration_failed proc (* = keep running *);
      drive ~routes step_fn proc
    | Migrate.Protocol.Suspend_to path ->
      let packed = Migrate.Pack.pack_request proc in
      write_file path packed.Migrate.Pack.p_bytes;
      Printf.eprintf "mcc: process suspended to %s; resume with: mcc \
                      resume %s\n" path path;
      Vm.Process.migration_completed proc;
      0
    | Migrate.Protocol.Migrate_to host -> (
      match List.assoc_opt host routes with
      | Some dir ->
        let packed = Migrate.Pack.pack_request proc in
        let path =
          Filename.concat dir
            (Printf.sprintf "mig-%d-%d.img" (Unix.getpid ())
               req.Vm.Process.m_label)
        in
        write_file path packed.Migrate.Pack.p_bytes;
        Printf.eprintf
          "mcc: process migrated to %s (%s, %d bytes); run `mcc serve %s` \
           there\n"
          host path
          (String.length packed.Migrate.Pack.p_bytes)
          dir;
        Vm.Process.migration_completed proc;
        0
      | None ->
        Printf.eprintf
          "mcc: no route to migration server %s; continuing locally\n" host;
        Vm.Process.migration_failed proc;
        drive ~routes step_fn proc)
    | exception Migrate.Protocol.Bad_target m ->
      Printf.eprintf "mcc: %s; continuing locally\n" m;
      Vm.Process.migration_failed proc;
      drive ~routes step_fn proc)

let run_cmd =
  let backend_arg =
    Arg.(
      value & opt string "native"
      & info [ "backend" ] ~docv:"B" ~doc:"Execution backend: reference \
                                           or native.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.")
  in
  let route_arg =
    Arg.(
      value & opt_all string []
      & info [ "route" ] ~docv:"HOST=DIR"
          ~doc:"Spool directory serving mcc://HOST migrations (see `mcc \
                serve`); repeatable.")
  in
  let action file lang_flag no_opt arch backend seed routes =
    try
      let routes =
        List.map
          (fun r ->
            match String.index_opt r '=' with
            | Some k ->
              String.sub r 0 k, String.sub r (k + 1) (String.length r - k - 1)
            | None -> failwith ("bad --route " ^ r ^ " (want HOST=DIR)"))
          routes
      in
      let fir = compile_file ~lang_flag ~optimize:(not no_opt) file in
      let arch = arch_of_string arch in
      let proc = Vm.Process.create ~arch ~seed fir in
      let step_fn =
        match backend with
        | "reference" -> fun () -> Vm.Interp.step proc
        | "native" ->
          let emu = Vm.Emulator.create (Vm.Codegen.compile ~arch fir) proc in
          fun () -> Vm.Emulator.step emu
        | other -> failwith ("unknown backend " ^ other)
      in
      let code = drive ~routes step_fn proc in
      print_string (Vm.Process.output proc);
      code
    with Failure m ->
      Printf.eprintf "mcc: %s\n" m;
      1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a program; services \
                          checkpoint/suspend/migrate requests locally.")
    Term.(
      const action $ file_arg $ lang_arg $ no_opt_arg $ arch_arg
      $ backend_arg $ seed_arg $ route_arg)

(* ------------------------------------------------------------------ *)
(* mcc resume                                                          *)
(* ------------------------------------------------------------------ *)

let resume_cmd =
  let trusted_arg =
    Arg.(
      value & flag
      & info [ "trusted" ]
          ~doc:"Skip verification and use the binary payload when the \
                architectures match.")
  in
  let action file arch trusted =
    let bytes = read_file file in
    let arch = arch_of_string arch in
    match Migrate.Pack.unpack ~trusted ~arch bytes with
    | Error m ->
      Printf.eprintf "mcc: image rejected: %s\n" m;
      1
    | Ok (proc, masm, _compiled, costs) ->
      Printf.eprintf "mcc: image accepted (%d bytes%s)\n"
        costs.Migrate.Pack.u_bytes
        (if costs.Migrate.Pack.u_recompiled then ", recompiled"
         else ", binary fast path");
      let emu = Vm.Emulator.create masm proc in
      let code = drive (fun () -> Vm.Emulator.step emu) proc in
      print_string (Vm.Process.output proc);
      code
  in
  Cmd.v
    (Cmd.info "resume" ~doc:"Execute a checkpoint/suspend image file.")
    Term.(const action $ file_arg $ arch_arg $ trusted_arg)

(* ------------------------------------------------------------------ *)
(* mcc serve                                                           *)
(* ------------------------------------------------------------------ *)

(* The migration server over a spool directory: "a version of the
   compiler that will listen for incoming migration requests, recompile
   any inbound processes on the new machine, and reconstruct their state
   before executing them" (paper, Section 4.2.1) — with a filesystem
   spool standing in for the TCP listener. *)
let serve_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"SPOOL_DIR")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ] ~doc:"Process the current batch \
                                              and exit.")
  in
  let trusted_arg =
    Arg.(value & flag & info [ "trusted" ] ~doc:"Skip verification; use \
                                                 binary payloads.")
  in
  let cache_arg =
    Arg.(
      value & opt int 16
      & info [ "code-cache" ] ~docv:"N"
          ~doc:"Recompilation-cache capacity in entries (0 disables): \
                repeated images of the same program skip typecheck and \
                codegen and are relinked from cached code.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the server's metrics registry (counters and \
                histograms, including the delta-migration ledger: \
                migrate.bytes_full, migrate.bytes_delta, \
                migrate.delta_hit_rate) after each processed batch.")
  in
  let baseline_arg =
    Arg.(
      value & opt int 4
      & info [ "baseline-cache" ] ~docv:"N"
          ~doc:"Retained delta baselines (0 disables delta receive): an \
                inbound delta image is reconstructed against the cached \
                full image it names and digest-verified before \
                verification.")
  in
  let action spool arch once trusted cache_capacity baseline_cache
      show_metrics =
    let arch = arch_of_string arch in
    let cache =
      if cache_capacity > 0 then
        Some (Migrate.Codecache.create ~capacity:cache_capacity ())
      else None
    in
    let server =
      Migrate.Server.create_cfg
        { Migrate.Server.Config.default with trusted; cache;
          baseline_cache }
        arch
    in
    let process_batch () =
      let images =
        Sys.readdir spool |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".img")
        |> List.sort String.compare
      in
      List.iter
        (fun name ->
          let path = Filename.concat spool name in
          let bytes = read_file path in
          Sys.remove path;
          match Migrate.Server.handle server bytes with
          | Error m -> Printf.eprintf "mcc serve: %s rejected: %s\n" name m
          | Ok outcome ->
            let costs = outcome.Migrate.Server.o_costs in
            Printf.eprintf
              "mcc serve: accepted %s (%d bytes%s); resuming\n" name
              costs.Migrate.Pack.u_bytes
              (if costs.Migrate.Pack.u_cache_hit then ", code cache hit"
               else if costs.Migrate.Pack.u_recompiled then ", recompiled"
               else ", binary fast path");
            let proc = outcome.Migrate.Server.o_process in
            let emu =
              Vm.Emulator.create outcome.Migrate.Server.o_masm proc
            in
            let code = drive (fun () -> Vm.Emulator.step emu) proc in
            print_string (Vm.Process.output proc);
            Printf.eprintf "mcc serve: %s finished with exit %d\n" name code)
        images;
      List.length images
    in
    let print_stats () =
      (match cache with
      | Some c -> Printf.eprintf "mcc serve: code cache: %s\n"
                    (Migrate.Codecache.report c)
      | None -> ());
      if show_metrics then
        prerr_string (Obs.Metrics.render (Migrate.Server.metrics server))
    in
    if once then begin
      let n = process_batch () in
      if n = 0 then Printf.eprintf "mcc serve: spool empty\n";
      print_stats ();
      0
    end
    else begin
      Printf.eprintf "mcc serve: watching %s (ctrl-c to stop)\n" spool;
      let rec loop () =
        let n = process_batch () in
        if n > 0 then print_stats ();
        Unix.sleepf 0.2;
        loop ()
      in
      loop ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a migration server over a spool directory: verify, \
             recompile and execute inbound process images.")
    Term.(
      const action $ dir_arg $ arch_arg $ once_arg $ trusted_arg $ cache_arg
      $ baseline_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* mcc grid                                                            *)
(* ------------------------------------------------------------------ *)

let grid_cmd =
  let ranks = Arg.(value & opt int 4 & info [ "ranks" ] ~doc:"Rank count.") in
  let rows =
    Arg.(value & opt int 6 & info [ "rows" ] ~doc:"Rows per rank.")
  in
  let cols = Arg.(value & opt int 12 & info [ "cols" ] ~doc:"Columns.") in
  let steps = Arg.(value & opt int 40 & info [ "steps" ] ~doc:"Timesteps.") in
  let interval =
    Arg.(value & opt int 10 & info [ "interval" ] ~doc:"Checkpoint interval.")
  in
  let fail =
    Arg.(value & flag & info [ "fail" ] ~doc:"Inject a node failure and \
                                              recover.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the cluster event trace (migrations, checkpoints, \
                failures, speculation) to FILE as JSON lines, ordered by \
                simulated time.")
  in
  let fault_plan_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "fault-plan" ] ~docv:"FILE"
          ~doc:"Inject faults from a plan file (message loss, \
                duplication, delay jitter, link partitions, node stalls \
                and crashes); see the Faults module for the line format. \
                Crashed ranks are resurrected from their checkpoints.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Cluster (and fault-plan) seed; identical seeds and plans \
                reproduce identical runs and traces.")
  in
  let delta_arg =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "delta" ]
                ~doc:"Ship delta images and incremental checkpoint \
                      segments when a retained baseline makes them \
                      smaller (the default)." );
            ( false,
              info [ "no-delta" ]
                ~doc:"Force every migration hop and checkpoint to carry \
                      a full image." );
          ])
  in
  let hb_interval_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "hb-interval" ] ~docv:"SECONDS"
          ~doc:"Run a heartbeat failure detector with this emission \
                interval.  Recovery decisions then come from heartbeat \
                silence on the survivors' clocks, never from ground-truth \
                crash state; a stalled node can be falsely suspected and \
                its stale incarnation is epoch-fenced.")
  in
  let suspect_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "suspect-timeout" ] ~docv:"SECONDS"
          ~doc:"Suspect a node once every peer has heard no heartbeat \
                from it for this long (default 5x the heartbeat \
                interval).  Implies the failure detector.")
  in
  let replication_arg =
    Arg.(
      value
      & opt int 0
      & info [ "replication" ] ~docv:"K"
          ~doc:"Replicate every checkpoint across K node-local stores \
                (which die with their node, and whose writes are subject \
                to the plan's storage faults) instead of the \
                indestructible shared store.  Reads digest-verify and \
                read-repair.")
  in
  let serve_bench_arg =
    Arg.(
      value & flag
      & info [ "serve-bench" ]
          ~doc:"Instead of the stencil, run the request-serving workload: \
                closed-loop clients addressing registered services by \
                logical address while the services migrate mid-traffic.  \
                Prints latency quantiles and the registry's \
                forward/rebind counters; exit status 3 if any request \
                was lost, duplicated or reordered.")
  in
  let clients_arg =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N" ~doc:"Client ranks (serve-bench).")
  in
  let services_arg =
    Arg.(value & opt int 2
         & info [ "services" ] ~docv:"K"
             ~doc:"Registered service processes (serve-bench).")
  in
  let requests_arg =
    Arg.(value & opt int 200
         & info [ "requests" ] ~docv:"N"
             ~doc:"Requests per client (serve-bench).")
  in
  let work_us_arg =
    Arg.(value & opt int 20
         & info [ "work-us" ] ~docv:"US"
             ~doc:"Simulated service time per request (serve-bench).")
  in
  let migrations_arg =
    Arg.(value & opt int 4
         & info [ "migrations" ] ~docv:"N"
             ~doc:"Service re-homings to land mid-traffic (serve-bench; \
                   0 = static run).")
  in
  let migrate_every_arg =
    Arg.(value & opt float 0.002
         & info [ "migrate-every" ] ~docv:"SECONDS"
             ~doc:"Simulated seconds between service re-homings \
                   (serve-bench).")
  in
  let skew_arg =
    Arg.(
      value & flag
      & info [ "skew" ]
          ~doc:"Skewed, phase-shifting request stream: 4 of every 5 \
                requests target the current phase's hot service \
                (serve-bench; the T2 workload).")
  in
  let speculative_arg =
    Arg.(
      value & flag
      & info [ "speculative" ]
          ~doc:"Speculative exactly-once serving (serve-bench; the F5 \
                workload): services reply from inside a speculation \
                before their dedup state is durable and commit through \
                the cluster's epoch-fenced distributed transaction \
                protocol; aborted attempts roll back and replay.")
  in
  let pack_arg =
    Arg.(value & opt int 0
         & info [ "pack" ] ~docv:"P"
             ~doc:"Cram all services onto the first P nodes instead of \
                   spreading them (serve-bench; 0 = spread).  The \
                   deliberately bad placement the balance engine is \
                   measured against.")
  in
  let balance_arg =
    Arg.(
      value & flag
      & info [ "balance" ]
          ~doc:"Enable the load-aware placement policy engine: sample \
                per-node load gauges every period and automatically \
                re-home registered services through the unified move \
                API (serve-bench).")
  in
  let balance_period_arg =
    Arg.(value & opt float Net.Balance.Config.default.Net.Balance.Config.period_s
         & info [ "balance-period" ] ~docv:"SECONDS"
             ~doc:"Simulated seconds between load samples (serve-bench).")
  in
  let balance_tolerance_arg =
    Arg.(value
         & opt float Net.Balance.Config.default.Net.Balance.Config.tolerance
         & info [ "balance-tolerance" ] ~docv:"FRAC"
             ~doc:"Load-spread tolerance band as a fraction of mean node \
                   load; no moves are proposed inside the band \
                   (serve-bench).")
  in
  let balance_budget_arg =
    Arg.(value
         & opt int Net.Balance.Config.default.Net.Balance.Config.move_budget
         & info [ "balance-budget" ] ~docv:"N"
             ~doc:"Max moves in or out of any node per sampling period \
                   (serve-bench).")
  in
  let balance_decay_arg =
    Arg.(value
         & opt float
             Net.Balance.Config.default.Net.Balance.Config.affinity_decay
         & info [ "balance-decay" ] ~docv:"FRAC"
             ~doc:"Per-period decay factor of the communication-affinity \
                   matrix (serve-bench).")
  in
  let action ranks rows_per_rank cols timesteps interval fail trace_file
      fault_plan_file seed delta hb_interval suspect_timeout replication
      serve_bench clients services requests work_us migrations migrate_every
      skew speculative pack balance balance_period balance_tolerance
      balance_budget balance_decay =
    let config =
      { Mcc.Gridapp.ranks; rows_per_rank; cols; timesteps; interval;
        work_us_per_step = 1000 }
    in
    let plan =
      match fault_plan_file with
      | None -> Ok Net.Faults.none
      | Some path -> Net.Faults.parse_plan ?seed (read_file path)
    in
    match plan with
    | Error m ->
      Printf.eprintf "mcc grid: bad fault plan: %s\n" m;
      2
    | Ok plan ->
    let write_trace cluster =
      match trace_file with
      | None -> true
      | Some path -> (
        try
          let oc = open_out path in
          Obs.Trace.write_jsonl (Net.Cluster.trace cluster) oc;
          close_out oc;
          Printf.eprintf "mcc grid: trace written to %s (%d events)\n" path
            (Obs.Trace.length (Net.Cluster.trace cluster));
          true
        with Sys_error m ->
          Printf.eprintf "mcc grid: cannot write trace: %s\n" m;
          false)
    in
    if serve_bench then begin
      let scfg =
        { Mcc.Gridapp.Serve.clients; services;
          requests_per_client = requests; work_us; skew; speculative }
      in
      let cluster =
        Net.Cluster.create_cfg
          { Net.Cluster.Config.default with
            node_count = max ranks 2;
            seed = (match seed with Some s -> s | None -> 1);
            net = Some (Net.Simnet.create ~latency_us:5.0 ());
            faults = plan;
            delta;
            balance =
              { Net.Balance.Config.enabled = balance;
                period_s = balance_period;
                tolerance = balance_tolerance;
                move_budget = balance_budget;
                affinity_decay = balance_decay } }
      in
      let placement = if pack > 0 then `Pack pack else `Spread in
      let d = Mcc.Gridapp.Serve.deploy ~placement cluster scfg in
      let r =
        Mcc.Gridapp.Serve.run ~migrate_every_s:migrate_every ~migrations d
      in
      let exact = Mcc.Gridapp.Serve.exactly_once d r in
      Printf.printf "served %d requests (%d clients x %d) at %d services\n"
        r.Mcc.Gridapp.Serve.rp_requests clients requests services;
      Printf.printf
        "latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, mean %.3f ms\n"
        r.rp_p50_ms r.rp_p90_ms r.rp_p99_ms r.rp_mean_ms;
      Printf.printf
        "registry: %d migrations, %d forwarded, %d rebinds, %d expired \
         sends\n"
        r.rp_migrations r.rp_forwarded r.rp_rebinds r.rp_expired;
      (if balance then
         let m = Net.Cluster.metrics cluster in
         Printf.printf
           "balance: %d ticks, %d proposals, %d moves, final spread \
            %.6f, last move at %.4f s\n"
           (Obs.Metrics.counter_value m "balance.ticks")
           (Obs.Metrics.counter_value m "balance.proposals")
           (Obs.Metrics.counter_value m "balance.moves")
           (Obs.Metrics.gauge_read m "balance.spread")
           (Obs.Metrics.gauge_read m "balance.last_move_s"));
      (if speculative then
         let m = Net.Cluster.metrics cluster in
         Printf.printf
           "dspec: %d opened, %d prepares, %d commits, %d aborts, %d \
            fence rejections, %d messages compensated\n"
           (Obs.Metrics.counter_value m "dspec.opened")
           (Obs.Metrics.counter_value m "dspec.prepares")
           (Obs.Metrics.counter_value m "dspec.commits")
           (Obs.Metrics.counter_value m "dspec.aborts")
           (Obs.Metrics.counter_value m "dspec.fence_rejections")
           (Obs.Metrics.counter_value m "dspec.compensated"));
      Printf.printf "simulated time: %.4f s\n" (Net.Cluster.now cluster);
      Printf.printf "exactly-once: %s\n" (if exact then "yes" else "NO");
      let trace_ok = write_trace cluster in
      if not trace_ok then 1 else if exact then 0 else 3
    end
    else begin
    let golden = Mcc.Gridapp.golden_checksums config in
    let faulty = not (Net.Faults.is_none plan) in
    let detector =
      match (hb_interval, suspect_timeout) with
      | None, None -> None
      | hi, st ->
        let hb =
          match hi with
          | Some s -> s
          | None -> Net.Detector.default.Net.Detector.hb_interval_s
        in
        let timeout = match st with Some s -> s | None -> 5.0 *. hb in
        Some
          { Net.Detector.default with
            Net.Detector.hb_interval_s = hb;
            suspect_timeout_s = timeout }
    in
    (* faults that can kill a node need somewhere to resurrect to *)
    let nodes = if fail || faulty then ranks + 1 else ranks in
    let cluster =
      Net.Cluster.create_cfg
        { Net.Cluster.Config.default with
          node_count = nodes;
          seed = (match seed with Some s -> s | None -> 1);
          net = Some (Net.Simnet.create ~latency_us:5.0 ());
          faults = plan;
          delta;
          detector;
          replication }
    in
    let d = Mcc.Gridapp.deploy ~spare:(fail || faulty) cluster config in
    if fail then begin
      let victims =
        Mcc.Gridapp.fail_and_recover ~rounds_before_failure:20 d
          ~victim_node:(1 mod nodes) ~spare_node:(nodes - 1)
      in
      Printf.printf "killed node1 (ranks %s), recovered from checkpoints\n"
        (String.concat "," (List.map string_of_int victims))
    end;
    let _ =
      if faulty then Mcc.Gridapp.run_resilient d else Mcc.Gridapp.run d
    in
    let sums = Mcc.Gridapp.checksums d in
    let ok = ref true in
    Array.iteri
      (fun r s ->
        let g = golden.(r) in
        let shown, matches =
          match s with
          | Some n -> string_of_int n, n = g
          | None -> "?", false
        in
        if not matches then ok := false;
        Printf.printf "rank %d: %s (golden %d)%s\n" r shown g
          (if matches then "" else "  <-- MISMATCH"))
      sums;
    Printf.printf "simulated time: %.4f s\n" (Net.Cluster.now cluster);
    (let m = Net.Cluster.metrics cluster in
     let full_b = Obs.Metrics.counter_value m "migrate.bytes_full"
     and delta_b = Obs.Metrics.counter_value m "migrate.bytes_delta" in
     if delta && full_b + delta_b > 0 then
       Printf.printf
         "delta shipping: %d full B, %d delta B, hit rate %.2f\n" full_b
         delta_b
         (Obs.Metrics.gauge_read m "migrate.delta_hit_rate"));
    if faulty then begin
      let m = Net.Cluster.metrics cluster in
      Printf.printf
        "faults: %d msg retransmits, %d msg dups, %d hops lost, %d \
         migrate retries, %d stalls, %d crashes\n"
        (Obs.Metrics.counter_value m "faults.retransmits")
        (Obs.Metrics.counter_value m "faults.msg_dup")
        (Obs.Metrics.counter_value m "faults.hop_lost")
        (Obs.Metrics.counter_value m "migrate.retries")
        (Obs.Metrics.counter_value m "faults.stalls")
        (Obs.Metrics.counter_value m "faults.crashes")
    end;
    (let m = Net.Cluster.metrics cluster in
     if Net.Cluster.detection_enabled cluster then
       Printf.printf
         "detector: %d heartbeats, %d suspicions (%d false), %d fence \
          rejections, %d resurrections\n"
         (Obs.Metrics.counter_value m "detector.heartbeats")
         (Obs.Metrics.counter_value m "detector.suspicions")
         (Obs.Metrics.counter_value m "detector.false_suspicions")
         (Obs.Metrics.counter_value m "fence.rejections")
         (Obs.Metrics.counter_value m "cluster.resurrections");
     if replication > 0 then
       Printf.printf
         "storage: k=%d, %d read-repairs, %d corrupt reads, %d lost / %d \
          torn / %d flipped replica writes\n"
         (Net.Storage.replication (Net.Cluster.storage cluster))
         (Obs.Metrics.counter_value m "storage.repairs")
         (Obs.Metrics.counter_value m "storage.corrupt_reads")
         (Obs.Metrics.counter_value m "faults.store_lost")
         (Obs.Metrics.counter_value m "faults.store_torn")
         (Obs.Metrics.counter_value m "faults.store_flip"));
    let trace_ok = write_trace cluster in
    if not trace_ok then 1 else if !ok then 0 else 3
    end
  in
  Cmd.v
    (Cmd.info "grid" ~doc:"Run the Figure 2 grid computation on the \
                           simulated cluster.")
    Term.(
      const action $ ranks $ rows $ cols $ steps $ interval $ fail
      $ trace_arg $ fault_plan_arg $ seed_arg $ delta_arg $ hb_interval_arg
      $ suspect_timeout_arg $ replication_arg $ serve_bench_arg $ clients_arg
      $ services_arg $ requests_arg $ work_us_arg $ migrations_arg
      $ migrate_every_arg $ skew_arg $ speculative_arg $ pack_arg
      $ balance_arg
      $ balance_period_arg $ balance_tolerance_arg $ balance_budget_arg
      $ balance_decay_arg)

let () =
  let info =
    Cmd.info "mcc" ~version:Mcc.Api.version
      ~doc:"The Mojave Compiler Collection (reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ compile_cmd; masm_cmd; run_cmd; resume_cmd; serve_cmd; grid_cmd ]))
