# Convenience targets; CI runs `make ci`.

.PHONY: all build test bench bench-perf ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Run the S1/V1 substrate meters and fail on a >30 % speedup-ratio
# regression against bench/baselines/ (see EXPERIMENTS.md, "Reading
# S1/V1").
bench-perf:
	dune exec bench/main.exe -- perfcheck

ci: build test

clean:
	dune clean
