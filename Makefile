# Convenience targets; CI runs `make ci`.

.PHONY: all build test bench ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

ci: build test

clean:
	dune clean
