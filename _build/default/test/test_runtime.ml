(* Tests for the runtime: pointer table, function table, heap, GC. *)

open Runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pointer table                                                       *)
(* ------------------------------------------------------------------ *)

let test_ptable_basic () =
  let t = Pointer_table.create () in
  let i1 = Pointer_table.alloc t 100 in
  let i2 = Pointer_table.alloc t 200 in
  check "distinct indices" true (i1 <> i2);
  check_int "get i1" 100 (Pointer_table.get t i1);
  check_int "get i2" 200 (Pointer_table.get t i2);
  Pointer_table.set t i1 150;
  check_int "set retargets" 150 (Pointer_table.get t i1);
  check_int "live count" 2 (Pointer_table.live_count t)

let test_ptable_validation () =
  let t = Pointer_table.create () in
  let i = Pointer_table.alloc t 10 in
  (* out of bounds: index beyond the high-water mark *)
  (match Pointer_table.get t (i + 1) with
  | exception Pointer_table.Invalid_pointer _ -> ()
  | _ -> Alcotest.fail "out-of-bounds index accepted");
  (match Pointer_table.get t (-1) with
  | exception Pointer_table.Invalid_pointer _ -> ()
  | _ -> Alcotest.fail "negative index accepted");
  Pointer_table.free t i;
  match Pointer_table.get t i with
  | exception Pointer_table.Invalid_pointer _ -> ()
  | _ -> Alcotest.fail "free entry accepted"

let test_ptable_reuse () =
  let t = Pointer_table.create () in
  let i1 = Pointer_table.alloc t 10 in
  let _i2 = Pointer_table.alloc t 20 in
  Pointer_table.free t i1;
  let i3 = Pointer_table.alloc t 30 in
  check "freed index reused" true (i1 = i3);
  check_int "table did not grow" 2 (Pointer_table.size t)

let test_ptable_growth () =
  let t = Pointer_table.create ~initial_capacity:2 () in
  let idxs = List.init 100 (fun k -> Pointer_table.alloc t (k * 10)) in
  List.iteri
    (fun k idx -> check_int "value survives growth" (k * 10)
        (Pointer_table.get t idx))
    idxs

let test_ptable_snapshot () =
  let t = Pointer_table.create () in
  let i1 = Pointer_table.alloc t 11 in
  let i2 = Pointer_table.alloc t 22 in
  Pointer_table.free t i1;
  let snap = Pointer_table.snapshot t in
  let t' = Pointer_table.restore snap in
  check_int "size preserved" (Pointer_table.size t) (Pointer_table.size t');
  check_int "live preserved" 1 (Pointer_table.live_count t');
  check_int "entry preserved" 22 (Pointer_table.get t' i2);
  check "freed entry still free" false (Pointer_table.is_valid t' i1);
  (* a fresh alloc in the restored table reuses the free slot *)
  let i3 = Pointer_table.alloc t' 33 in
  check "restored free list works" true (i3 = i1)

(* ------------------------------------------------------------------ *)
(* Function table                                                      *)
(* ------------------------------------------------------------------ *)

let test_ftable () =
  let t = Function_table.of_program_names [ "zebra"; "alpha"; "main" ] in
  check_int "count" 3 (Function_table.count t);
  (* deterministic: sorted by name *)
  check_int "alpha first" 0 (Function_table.index t "alpha");
  check_int "zebra last" 2 (Function_table.index t "zebra");
  Alcotest.(check string) "name roundtrip" "main"
    (Function_table.name t (Function_table.index t "main"));
  (match Function_table.name t 99 with
  | exception Function_table.Invalid_function _ -> ()
  | _ -> Alcotest.fail "bad function index accepted");
  match Function_table.of_names [ "f"; "f" ] with
  | exception Function_table.Invalid_function _ -> ()
  | _ -> Alcotest.fail "duplicate function accepted"

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_alloc_rw () =
  let h = Heap.create () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:5 ~init:(Value.Vint 0) in
  check_int "size" 5 (Heap.block_size h idx);
  Heap.write h idx 2 (Value.Vint 42);
  check "read back" true (Value.equal (Heap.read h idx 2) (Value.Vint 42));
  check "untouched cell" true (Value.equal (Heap.read h idx 0) (Value.Vint 0))

let test_heap_bounds () =
  let h = Heap.create () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:3 ~init:Value.Vunit in
  (match Heap.read h idx 3 with
  | exception Heap.Runtime_error _ -> ()
  | _ -> Alcotest.fail "out-of-bounds read accepted");
  (match Heap.write h idx (-1) Value.Vunit with
  | exception Heap.Runtime_error _ -> ()
  | _ -> Alcotest.fail "negative offset accepted");
  match Heap.read h (idx + 100) 0 with
  | exception Pointer_table.Invalid_pointer _ -> ()
  | _ -> Alcotest.fail "invalid index accepted"

let test_heap_tuple_raw () =
  let h = Heap.create () in
  let t = Heap.alloc_tuple h [ Value.Vint 1; Value.Vbool true ] in
  check "tuple tag" true (Heap.block_tag h t = Heap.Tuple);
  check "tuple field" true (Value.equal (Heap.read h t 1) (Value.Vbool true));
  let r = Heap.alloc_raw h "hello" in
  Alcotest.(check string) "raw roundtrip" "hello" (Heap.raw_to_string h r);
  check_int "raw size" 5 (Heap.block_size h r);
  match Heap.raw_to_string h t with
  | exception Heap.Runtime_error _ -> ()
  | _ -> Alcotest.fail "raw_to_string on tuple accepted"

let test_heap_cow_clone () =
  let h = Heap.create () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:2 ~init:(Value.Vint 7) in
  let original = Heap.clone_for_cow h idx in
  (* the clone is now the target; mutating it leaves the original alone *)
  Heap.write h idx 0 (Value.Vint 99);
  check "clone mutated" true (Value.equal (Heap.read h idx 0) (Value.Vint 99));
  Heap.retarget h idx original;
  check "original preserved" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 7));
  check_int "one clone counted" 1 (Heap.stats h).Heap.cow_clones

let test_heap_growth () =
  let h = Heap.create ~initial_cells:64 () in
  let idxs =
    List.init 50 (fun k ->
        let idx = Heap.alloc h ~tag:Heap.Array ~size:10 ~init:(Value.Vint k) in
        idx, k)
  in
  List.iter
    (fun (idx, k) ->
      check "data survives growth" true
        (Value.equal (Heap.read h idx 9) (Value.Vint k)))
    idxs

(* ------------------------------------------------------------------ *)
(* GC                                                                  *)
(* ------------------------------------------------------------------ *)

let test_gc_collects_garbage () =
  let h = Heap.create () in
  let live = Heap.alloc h ~tag:Heap.Array ~size:4 ~init:(Value.Vint 1) in
  let _dead = Heap.alloc h ~tag:Heap.Array ~size:100 ~init:(Value.Vint 2) in
  let before = Heap.used_cells h in
  let res =
    Gc.collect h ~kind:Gc.Major ~roots:[ Value.Vptr (live, 0) ] ~pinned:[]
  in
  check_int "one block collected" 1 res.Gc.collected_blocks;
  check "heap shrank" true (Heap.used_cells h < before);
  check "live data intact" true
    (Value.equal (Heap.read h live 3) (Value.Vint 1))

let test_gc_transitive () =
  let h = Heap.create () in
  let inner = Heap.alloc h ~tag:Heap.Array ~size:2 ~init:(Value.Vint 5) in
  let outer = Heap.alloc_tuple h [ Value.Vptr (inner, 0) ] in
  let _garbage = Heap.alloc h ~tag:Heap.Array ~size:50 ~init:Value.Vunit in
  let _res =
    Gc.collect h ~kind:Gc.Major ~roots:[ Value.Vptr (outer, 0) ] ~pinned:[]
  in
  check "inner reachable through outer" true
    (Value.equal (Heap.read h inner 0) (Value.Vint 5));
  (* the dead block's pointer-table entry was freed for reuse *)
  let fresh = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:Value.Vunit in
  check "dead index reused" true (fresh <> inner && fresh <> outer)

let test_gc_compaction_moves () =
  let h = Heap.create () in
  let _dead = Heap.alloc h ~tag:Heap.Array ~size:64 ~init:Value.Vunit in
  let live = Heap.alloc h ~tag:Heap.Array ~size:4 ~init:(Value.Vint 9) in
  let addr_before = Pointer_table.get (Heap.pointer_table h) live in
  let res =
    Gc.collect h ~kind:Gc.Major ~roots:[ Value.Vptr (live, 0) ] ~pinned:[]
  in
  let addr_after = Pointer_table.get (Heap.pointer_table h) live in
  check "block slid down" true (addr_after < addr_before);
  check "forward map recorded the move" true
    (Gc.forward_addr res addr_before = addr_after);
  check "contents preserved across move" true
    (Value.equal (Heap.read h live 0) (Value.Vint 9))

let test_gc_minor_remembered_set () =
  let h = Heap.create () in
  (* make an old block *)
  let old_blk = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:Value.Vunit in
  let _ = Gc.collect h ~kind:Gc.Major ~roots:[ Value.Vptr (old_blk, 0) ]
      ~pinned:[] in
  (* young block referenced ONLY from the old block *)
  let young = Heap.alloc h ~tag:Heap.Array ~size:2 ~init:(Value.Vint 3) in
  Heap.write h old_blk 0 (Value.Vptr (young, 0));
  check "barrier fired" true ((Heap.stats h).Heap.barrier_hits >= 1);
  let _ =
    Gc.collect h ~kind:Gc.Minor ~roots:[ Value.Vptr (old_blk, 0) ] ~pinned:[]
  in
  check "young block survived via remembered set" true
    (Value.equal (Heap.read h young 0) (Value.Vint 3))

let test_gc_minor_ignores_old () =
  let h = Heap.create () in
  let old_blk = Heap.alloc h ~tag:Heap.Array ~size:8 ~init:(Value.Vint 1) in
  let _ = Gc.collect h ~kind:Gc.Major ~roots:[ Value.Vptr (old_blk, 0) ]
      ~pinned:[] in
  let _young_garbage =
    Heap.alloc h ~tag:Heap.Array ~size:16 ~init:Value.Vunit
  in
  (* old block is NOT in the root set of the minor collection, but minor
     collections never free old blocks *)
  let res = Gc.collect h ~kind:Gc.Minor ~roots:[] ~pinned:[] in
  check_int "only the young garbage went" 1 res.Gc.collected_blocks;
  check "old block untouched" true
    (Value.equal (Heap.read h old_blk 0) (Value.Vint 1))

let test_gc_pinned_records () =
  let h = Heap.create () in
  let idx = Heap.alloc h ~tag:Heap.Array ~size:3 ~init:(Value.Vint 7) in
  let original = Heap.clone_for_cow h idx in
  Heap.write h idx 0 (Value.Vint 8);
  (* the original is not pointer-table reachable; without pinning it would
     be collected *)
  let res =
    Gc.collect h ~kind:Gc.Major
      ~roots:[ Value.Vptr (idx, 0) ]
      ~pinned:[ idx, original ]
  in
  let original' = Gc.forward_addr res original in
  Heap.retarget h idx original';
  check "original restorable after GC" true
    (Value.equal (Heap.read h idx 0) (Value.Vint 7))

let test_gc_pinned_inner_refs () =
  (* a block referenced only from a pinned original must survive *)
  let h = Heap.create () in
  let inner = Heap.alloc h ~tag:Heap.Array ~size:1 ~init:(Value.Vint 11) in
  let idx = Heap.alloc_tuple h [ Value.Vptr (inner, 0) ] in
  let original = Heap.clone_for_cow h idx in
  (* overwrite the reference in the clone: inner now referenced only from
     the original *)
  Heap.write h idx 0 Value.Vunit;
  let res =
    Gc.collect h ~kind:Gc.Major
      ~roots:[ Value.Vptr (idx, 0) ]
      ~pinned:[ idx, original ]
  in
  check "inner survived through pinned original" true
    (Value.equal (Heap.read h inner 0) (Value.Vint 11));
  let original' = Gc.forward_addr res original in
  Heap.retarget h idx original';
  match Heap.read h idx 0 with
  | Value.Vptr (j, 0) ->
    check "restored original still references inner" true (j = inner)
  | v -> Alcotest.failf "unexpected restored cell %s" (Value.to_string v)

let test_gc_empty_roots () =
  let h = Heap.create () in
  let _a = Heap.alloc h ~tag:Heap.Array ~size:10 ~init:Value.Vunit in
  let _b = Heap.alloc h ~tag:Heap.Raw ~size:10 ~init:(Value.Vint 0) in
  let res = Gc.collect h ~kind:Gc.Major ~roots:[] ~pinned:[] in
  check_int "everything collected" 2 res.Gc.collected_blocks;
  check_int "heap empty" 0 (Heap.used_cells h);
  check_int "no live entries" 0 (Pointer_table.live_count (Heap.pointer_table h))

(* Model-based property: random object graphs survive GC intact. *)
let prop_gc_preserves_reachable =
  QCheck.Test.make ~count:60 ~name:"GC preserves reachable object graphs"
    QCheck.(pair (int_range 1 40) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let h = Heap.create () in
      (* build n blocks, each holding ints and random back-references *)
      let idxs = Array.make n 0 in
      for k = 0 to n - 1 do
        let size = 1 + Random.State.int rng 6 in
        let idx = Heap.alloc h ~tag:Heap.Array ~size ~init:(Value.Vint k) in
        idxs.(k) <- idx;
        if k > 0 && Random.State.bool rng then
          Heap.write h idx 0
            (Value.Vptr (idxs.(Random.State.int rng k), 0))
      done;
      (* garbage *)
      for _ = 1 to 20 do
        ignore (Heap.alloc h ~tag:Heap.Array ~size:3 ~init:Value.Vunit)
      done;
      (* record the full reachable contents from a random subset of roots *)
      let roots =
        Array.to_list idxs
        |> List.filter (fun _ -> Random.State.bool rng)
        |> List.map (fun idx -> Value.Vptr (idx, 0))
      in
      let reachable_contents () =
        let seen = Hashtbl.create 16 in
        let rec go v =
          match v with
          | Value.Vptr (j, _) when not (Hashtbl.mem seen j) ->
            Hashtbl.add seen j ();
            let size = Heap.block_size h j in
            List.init size (fun o -> Heap.read h j o) |> List.iter go
          | _ -> ()
        in
        List.iter go roots;
        Hashtbl.fold
          (fun j () acc ->
            let size = Heap.block_size h j in
            (j, List.init size (fun o -> Heap.read h j o)) :: acc)
          seen []
        |> List.sort compare
      in
      let before = reachable_contents () in
      Heap.validate h;
      let _ = Gc.collect h ~kind:Gc.Major ~roots ~pinned:[] in
      Heap.validate h;
      let after = reachable_contents () in
      List.length before = List.length after
      && List.for_all2
           (fun (j1, c1) (j2, c2) ->
             j1 = j2 && List.for_all2 Value.equal c1 c2)
           before after)

let suites =
  [
    ( "runtime.pointer_table",
      [
        Alcotest.test_case "alloc/get/set" `Quick test_ptable_basic;
        Alcotest.test_case "validation" `Quick test_ptable_validation;
        Alcotest.test_case "free-list reuse" `Quick test_ptable_reuse;
        Alcotest.test_case "growth" `Quick test_ptable_growth;
        Alcotest.test_case "snapshot/restore" `Quick test_ptable_snapshot;
      ] );
    ( "runtime.function_table",
      [ Alcotest.test_case "deterministic numbering" `Quick test_ftable ] );
    ( "runtime.heap",
      [
        Alcotest.test_case "alloc/read/write" `Quick test_heap_alloc_rw;
        Alcotest.test_case "bounds checking" `Quick test_heap_bounds;
        Alcotest.test_case "tuples and raw blocks" `Quick test_heap_tuple_raw;
        Alcotest.test_case "copy-on-write clone" `Quick test_heap_cow_clone;
        Alcotest.test_case "store growth" `Quick test_heap_growth;
      ] );
    ( "runtime.gc",
      [
        Alcotest.test_case "collects garbage" `Quick test_gc_collects_garbage;
        Alcotest.test_case "transitive marking" `Quick test_gc_transitive;
        Alcotest.test_case "compaction relocates" `Quick
          test_gc_compaction_moves;
        Alcotest.test_case "minor uses remembered set" `Quick
          test_gc_minor_remembered_set;
        Alcotest.test_case "minor leaves old gen alone" `Quick
          test_gc_minor_ignores_old;
        Alcotest.test_case "pinned originals survive" `Quick
          test_gc_pinned_records;
        Alcotest.test_case "refs inside pinned originals survive" `Quick
          test_gc_pinned_inner_refs;
        Alcotest.test_case "no roots collects all" `Quick test_gc_empty_roots;
        QCheck_alcotest.to_alcotest prop_gc_preserves_reachable;
      ] );
  ]
