test/test_fir.ml: Alcotest Ast Builder Bytes Char Fir Float List Opt Pp Printf QCheck QCheck_alcotest Serial String Typecheck Types Var
