test/test_miniml.ml: Alcotest Fir List Minic Miniml Net Vm
