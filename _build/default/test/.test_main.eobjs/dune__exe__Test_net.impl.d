test/test_net.ml: Alcotest Array Builder Fir List Net Option Runtime Typecheck Types Value Vm
