test/test_main.ml: Alcotest Test_extended Test_fir Test_mcc Test_migrate Test_minic Test_miniml Test_net Test_pascal Test_runtime Test_spec Test_vm
