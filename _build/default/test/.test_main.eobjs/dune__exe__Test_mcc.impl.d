test/test_mcc.ml: Alcotest Array Fir List Mcc Net Printf String Vm
