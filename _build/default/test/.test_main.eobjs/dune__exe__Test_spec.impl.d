test/test_spec.ml: Alcotest Array Gc Heap List Printf QCheck QCheck_alcotest Runtime Spec String Value
