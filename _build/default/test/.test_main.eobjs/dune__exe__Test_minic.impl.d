test/test_minic.ml: Alcotest Fir List Migrate Minic Net Option Vm
