test/test_migrate.ml: Alcotest Array Ast Builder Bytes Char Fir Heap List Migrate Printf Runtime Serial Spec String Types Value Var Vm
