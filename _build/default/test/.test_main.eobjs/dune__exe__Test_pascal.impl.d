test/test_pascal.ml: Alcotest List Mcc Migrate Pascal Vm
