test/test_vm.ml: Alcotest Ast Builder Bytes Char Fir Heap List Opt Printf Runtime Typecheck Types Value Vm
