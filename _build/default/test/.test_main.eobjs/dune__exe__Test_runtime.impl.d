test/test_runtime.ml: Alcotest Array Function_table Gc Hashtbl Heap List Pointer_table QCheck QCheck_alcotest Random Runtime Value
