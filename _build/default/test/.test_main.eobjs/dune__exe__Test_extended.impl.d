test/test_extended.ml: Alcotest Array Buffer Fir Gc Gen Hashtbl Heap List Mcc Migrate Minic Miniml Net Pascal Pointer_table Printf QCheck QCheck_alcotest Runtime Spec String Value Vm
