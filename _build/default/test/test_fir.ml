(* Tests for the FIR: types, variables, builder, typechecker, optimizer,
   and the canonical serializer. *)

open Fir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let test_type_equal () =
  let open Types in
  check "int = int" true (equal Tint Tint);
  check "int <> float" false (equal Tint Tfloat);
  check "enum cardinality matters" false (equal (Tenum 2) (Tenum 3));
  check "ptr int = ptr int" true (equal (Tptr Tint) (Tptr Tint));
  check "nested tuple" true
    (equal (Ttuple [ Tint; Tptr Tfloat ]) (Ttuple [ Tint; Tptr Tfloat ]));
  check "tuple arity" false (equal (Ttuple [ Tint ]) (Ttuple [ Tint; Tint ]));
  check "fun sig" true (equal (Tfun [ Tint; Tbool ]) (Tfun [ Tint; Tbool ]));
  check "fun sig order" false (equal (Tfun [ Tint; Tbool ]) (Tfun [ Tbool; Tint ]))

let test_type_predicates () =
  let open Types in
  check "ptr is reference" true (is_reference (Tptr Tint));
  check "raw is reference" true (is_reference Traw);
  check "tuple is reference" true (is_reference (Ttuple [ Tint ]));
  check "int is not reference" false (is_reference Tint);
  check "fun is not reference" false (is_reference (Tfun []));
  check_int "tuple cell size" 3 (cell_size (Ttuple [ Tint; Tint; Tfloat ]));
  check_int "scalar cell size" 1 (cell_size Tint)

let test_type_pp () =
  check_str "pp ptr" "int ptr" (Types.to_string (Types.Tptr Types.Tint));
  check_str "pp enum" "enum[4]" (Types.to_string (Types.Tenum 4));
  check_str "pp fun" "(int, bool) -> ."
    (Types.to_string (Types.Tfun [ Types.Tint; Types.Tbool ]))

(* ------------------------------------------------------------------ *)
(* Variables                                                           *)
(* ------------------------------------------------------------------ *)

let test_var_fresh () =
  let a = Var.fresh "x" and b = Var.fresh "x" in
  check "fresh vars differ" false (Var.equal a b);
  check "self equal" true (Var.equal a a);
  check "ordered" true (Var.compare a b < 0)

let test_var_of_id () =
  let v = Var.of_id ~id:1_000_000 ~name:"m" in
  let w = Var.fresh "n" in
  check "of_id preserves id" true (Var.id v = 1_000_000);
  check "fresh after of_id does not collide" true (Var.id w > 1_000_000)

(* ------------------------------------------------------------------ *)
(* Builder + typechecker                                               *)
(* ------------------------------------------------------------------ *)

let trivial_program =
  Builder.(
    prog
      [
        func "main" [] (fun _ ->
            add (int 1) (int 2) (fun s -> exit_ s));
      ])

let loop_program =
  (* sum 0..9 via the for_loop helper *)
  Builder.(
    let loop, entry =
      for_loop ~name:"loop" ~lo:(int 0) ~hi:(int 10)
        ~state_tys:[ Types.Tint ] ~state:[ int 0 ]
        ~body:(fun i st continue ->
          match st with
          | [ acc ] -> add acc i (fun acc' -> continue [ acc' ])
          | _ -> assert false)
        ~after:(fun st ->
          match st with [ acc ] -> exit_ acc | _ -> assert false)
    in
    prog [ loop; func "main" [] (fun _ -> entry) ])

let heap_program =
  Builder.(
    prog
      [
        func "main" [] (fun _ ->
            array Types.Tint ~size:(int 8) ~init:(int 0) (fun arr ->
                store arr (int 3) (int 42)
                  (load Types.Tint arr (int 3) (fun x -> exit_ x))));
      ])

let test_well_typed () =
  check "trivial" true (Typecheck.well_typed trivial_program);
  check "loop" true (Typecheck.well_typed loop_program);
  check "heap" true (Typecheck.well_typed heap_program)

let expect_ill_typed name p =
  match Typecheck.check_program p with
  | Ok () -> Alcotest.failf "%s: expected a type error" name
  | Error _ -> ()

let test_ill_typed_cond () =
  expect_ill_typed "int condition"
    Builder.(
      prog [ func "main" [] (fun _ -> if_ (int 1) (exit_ (int 0)) (exit_ (int 1))) ])

let test_ill_typed_arity () =
  expect_ill_typed "arity mismatch"
    Builder.(
      prog
        [
          func "f" [ "x", Types.Tint ] (fun _ -> exit_ (int 0));
          func "main" [] (fun _ -> callf "f" [ int 1; int 2 ]);
        ])

let test_ill_typed_arg () =
  expect_ill_typed "argument type mismatch"
    Builder.(
      prog
        [
          func "f" [ "x", Types.Tint ] (fun _ -> exit_ (int 0));
          func "main" [] (fun _ -> callf "f" [ bool true ]);
        ])

let test_ill_typed_enum_range () =
  expect_ill_typed "enum out of range"
    Builder.(
      prog [ func "main" [] (fun _ -> atom (Types.Tenum 2) (enum 2 5) (fun _ -> exit_ (int 0))) ])

let test_ill_typed_proj () =
  expect_ill_typed "projection out of bounds"
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              tuple [ Types.Tint, int 1 ] (fun t ->
                  proj Types.Tint t 3 (fun x -> exit_ x)));
        ])

let test_ill_typed_speculate () =
  (* the speculation entry function must take the rollback code first *)
  expect_ill_typed "speculate entry without code parameter"
    Builder.(
      prog
        [
          func "body" [ "x", Types.Tbool ] (fun _ -> exit_ (int 0));
          func "main" [] (fun _ -> speculate (fn "body") [ bool true ]);
        ])

let test_speculate_ok () =
  let p =
    Builder.(
      prog
        [
          func "body" [ "c", Types.Tint; "x", Types.Tint ] (fun args ->
              match args with
              | [ c; x ] ->
                eq c (int 0) (fun fresh ->
                    if_ fresh
                      (commit (int 1) (fn "done_") [ x ])
                      (exit_ c))
              | _ -> assert false);
          func "done_" [ "x", Types.Tint ] (fun args ->
              match args with [ x ] -> exit_ x | _ -> assert false);
          func "main" [] (fun _ -> speculate (fn "body") [ int 7 ]);
        ])
  in
  check "speculation program typechecks" true (Typecheck.well_typed p)

let test_ill_typed_main_params () =
  expect_ill_typed "main with parameters"
    Builder.(
      prog [ func "main" [ "x", Types.Tint ] (fun _ -> exit_ (int 0)) ])

let test_ill_typed_nil () =
  expect_ill_typed "nil of scalar type"
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              atom Types.Tint (nil Types.Tint) (fun x -> exit_ x));
        ])

let test_strict_externs () =
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              ext Types.Tunit "mystery" [] (fun _ -> exit_ (int 0)));
        ])
  in
  check "lenient accepts unknown extern" true (Typecheck.well_typed p);
  check "strict rejects unknown extern" false
    (Typecheck.well_typed ~strict:true p);
  let externs name =
    if String.equal name "mystery" then Some ([], Types.Tunit) else None
  in
  check "strict accepts known extern" true
    (Typecheck.well_typed ~strict:true ~externs p)

let test_extern_signature_mismatch () =
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              ext Types.Tint "print_int" [ bool true ] (fun _ ->
                  exit_ (int 0)));
        ])
  in
  let externs name =
    if String.equal name "print_int" then
      Some ([ Types.Tint ], Types.Tunit)
    else None
  in
  check "extern arg mismatch rejected" false
    (Typecheck.well_typed ~externs p)

(* ------------------------------------------------------------------ *)
(* Free variables / called functions                                   *)
(* ------------------------------------------------------------------ *)

let test_free_vars () =
  let x = Var.fresh "x" in
  let e =
    Ast.Let_binop
      (Var.fresh "y", Types.Tint, Ast.Add, Ast.Var x, Ast.Int 1,
       Ast.Exit (Ast.Var x))
  in
  let fv = Ast.free_vars e in
  check "x free" true (Var.Set.mem x fv);
  check_int "only x free" 1 (Var.Set.cardinal fv)

let test_bound_not_free () =
  let x = Var.fresh "x" in
  let e = Ast.Let_atom (x, Types.Tint, Ast.Int 1, Ast.Exit (Ast.Var x)) in
  check "bound var is not free" true (Var.Set.is_empty (Ast.free_vars e))

let test_called_funs () =
  let e =
    Ast.If
      ( Ast.Bool true,
        Ast.Call (Ast.Fun "f", []),
        Ast.Call (Ast.Fun "g", [ Ast.Fun "h" ]) )
  in
  let funs = List.sort_uniq String.compare (Ast.called_funs e) in
  check "f g h called" true (funs = [ "f"; "g"; "h" ])

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_constant_fold () =
  let p = Opt.optimize trivial_program in
  let main = Ast.fun_exn p "main" in
  (match main.Ast.f_body with
  | Ast.Exit (Ast.Int 3) -> ()
  | e -> Alcotest.failf "expected exit 3, got %s" (Pp.exp_to_string e));
  check "optimized still typechecks" true (Typecheck.well_typed p)

let test_fold_if () =
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              lt (int 1) (int 2) (fun c ->
                  if_ c (exit_ (int 10)) (exit_ (int 20))));
        ])
  in
  let p = Opt.optimize p in
  match (Ast.fun_exn p "main").Ast.f_body with
  | Ast.Exit (Ast.Int 10) -> ()
  | e -> Alcotest.failf "expected exit 10, got %s" (Pp.exp_to_string e)

let test_fold_switch () =
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              switch (int 2)
                [ 1, exit_ (int 100); 2, exit_ (int 200) ]
                (exit_ (int 0)));
        ])
  in
  let p = Opt.optimize p in
  match (Ast.fun_exn p "main").Ast.f_body with
  | Ast.Exit (Ast.Int 200) -> ()
  | e -> Alcotest.failf "expected exit 200, got %s" (Pp.exp_to_string e)

let test_dead_code () =
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              tuple [ Types.Tint, int 1; Types.Tint, int 2 ] (fun _unused ->
                  exit_ (int 0)));
        ])
  in
  let p = Opt.optimize p in
  match (Ast.fun_exn p "main").Ast.f_body with
  | Ast.Exit (Ast.Int 0) -> ()
  | e -> Alcotest.failf "dead tuple not removed: %s" (Pp.exp_to_string e)

let test_div_not_eliminated () =
  (* a division is kept even if unused: it can trap *)
  let x = Var.fresh "x" in
  let p =
    Ast.program ~main:"main"
      [
        {
          Ast.f_name = "main";
          f_params = [];
          f_body =
            Ast.Let_binop
              (x, Types.Tint, Ast.Div, Ast.Int 1, Ast.Int 0,
               Ast.Exit (Ast.Int 0));
        };
      ]
  in
  let p = Opt.optimize p in
  match (Ast.fun_exn p "main").Ast.f_body with
  | Ast.Let_binop (_, _, Ast.Div, _, _, _) -> ()
  | e -> Alcotest.failf "trapping div was eliminated: %s" (Pp.exp_to_string e)

let test_inline () =
  let p =
    Builder.(
      prog
        [
          func "double" [ "k", Types.Tfun [ Types.Tint ]; "x", Types.Tint ]
            (fun args ->
              match args with
              | [ k; x ] -> add x x (fun d -> call k [ d ])
              | _ -> assert false);
          func "finish" [ "r", Types.Tint ] (fun args ->
              match args with [ r ] -> exit_ r | _ -> assert false);
          func "main" [] (fun _ -> callf "double" [ fn "finish"; int 21 ]);
        ])
  in
  let p = Opt.optimize p in
  check "still typechecks after inlining" true (Typecheck.well_typed p);
  match (Ast.fun_exn p "main").Ast.f_body with
  | Ast.Exit (Ast.Int 42) -> ()
  | e -> Alcotest.failf "expected exit 42 after inlining, got %s"
           (Pp.exp_to_string e)

(* count binop nodes in an expression *)
let rec count_binops = function
  | Ast.Let_binop (_, _, _, _, _, e) -> 1 + count_binops e
  | Ast.Let_atom (_, _, _, e)
  | Ast.Let_cast (_, _, _, e)
  | Ast.Let_unop (_, _, _, _, e)
  | Ast.Let_tuple (_, _, e)
  | Ast.Let_array (_, _, _, _, e)
  | Ast.Let_string (_, _, e)
  | Ast.Let_proj (_, _, _, _, e)
  | Ast.Set_proj (_, _, _, e)
  | Ast.Let_load (_, _, _, _, e)
  | Ast.Store (_, _, _, e)
  | Ast.Let_ext (_, _, _, _, e) ->
    count_binops e
  | Ast.If (_, a, b) -> count_binops a + count_binops b
  | Ast.Switch (_, cases, d) ->
    List.fold_left (fun acc (_, e) -> acc + count_binops e) (count_binops d)
      cases
  | Ast.Call _ | Ast.Exit _ | Ast.Migrate _ | Ast.Speculate _ | Ast.Commit _
  | Ast.Rollback _ ->
    0

let test_cse_dedups () =
  (* the same sum computed twice from a parameter; constant folding cannot
     remove it, CSE must *)
  let p =
    Builder.(
      prog
        [
          func "f" [ "k", Types.Tfun [ Types.Tint ]; "x", Types.Tint ]
            (fun args ->
              match args with
              | [ k; x ] ->
                add x (int 1) (fun a ->
                    add x (int 1) (fun b ->
                        mul a b (fun r -> call k [ r ])))
              | _ -> assert false);
          func "fin" [ "r", Types.Tint ] (fun args ->
              match args with [ r ] -> exit_ r | _ -> assert false);
          func "main" [] (fun _ -> callf "f" [ fn "fin"; int 6 ]);
        ])
  in
  let before = count_binops (Ast.fun_exn p "f").Ast.f_body in
  let p' = Opt.optimize p in
  check "optimized still typechecks" true (Typecheck.well_typed p');
  (* after inlining, main holds the whole computation *)
  let total =
    Ast.fold_funs (fun fd acc -> acc + count_binops fd.Ast.f_body) p' 0
  in
  check "CSE removed the duplicate addition" true (total < before + 1)

let test_cse_commutative () =
  let body a_first =
    Builder.(
      func "main" [] (fun _ ->
          ext Types.Tint "rand" [ int 100 ] (fun x ->
              ext Types.Tint "rand" [ int 100 ] (fun y ->
                  binop Types.Tint Ast.Add x y (fun s1 ->
                      (if a_first then binop Types.Tint Ast.Add x y
                       else binop Types.Tint Ast.Add y x)
                        (fun s2 -> mul s1 s2 (fun r -> exit_ r))))))) 
  in
  let deduped flip =
    let p = Ast.program ~main:"main" [ body flip ] in
    let e =
      Opt.eliminate_common_subexpressions (Ast.fun_exn p "main").Ast.f_body
    in
    count_binops e
  in
  check_int "x+y ; x+y dedups" 2 (deduped true);
  check_int "x+y ; y+x dedups too (commutative)" 2 (deduped false);
  (* subtraction is not commutative *)
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              ext Types.Tint "rand" [ int 100 ] (fun x ->
                  ext Types.Tint "rand" [ int 100 ] (fun y ->
                      binop Types.Tint Ast.Sub x y (fun s1 ->
                          binop Types.Tint Ast.Sub y x (fun s2 ->
                              mul s1 s2 (fun r -> exit_ r))))));
        ])
  in
  let e =
    Opt.eliminate_common_subexpressions (Ast.fun_exn p "main").Ast.f_body
  in
  check_int "x-y ; y-x does NOT dedup" 3 (count_binops e)

let test_cse_not_loads () =
  (* two loads of the same cell with a store in between must both stay *)
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              array Types.Tint ~size:(int 1) ~init:(int 1) (fun cell ->
                  load Types.Tint cell (int 0) (fun a ->
                      store cell (int 0) (int 2)
                        (load Types.Tint cell (int 0) (fun b ->
                             mul (int 10) a (fun ta ->
                                 add ta b (fun r -> exit_ r)))))));
        ])
  in
  let p' = Opt.optimize p in
  check "loads survive optimization" true (Typecheck.well_typed p');
  (* semantics check happens in the VM suite; here: structure retains two
     loads *)
  let rec count_loads = function
    | Ast.Let_load (_, _, _, _, e) -> 1 + count_loads e
    | Ast.Let_atom (_, _, _, e)
    | Ast.Let_cast (_, _, _, e)
    | Ast.Let_unop (_, _, _, _, e)
    | Ast.Let_binop (_, _, _, _, _, e)
    | Ast.Let_tuple (_, _, e)
    | Ast.Let_array (_, _, _, _, e)
    | Ast.Let_string (_, _, e)
    | Ast.Let_proj (_, _, _, _, e)
    | Ast.Set_proj (_, _, _, e)
    | Ast.Store (_, _, _, e)
    | Ast.Let_ext (_, _, _, _, e) ->
      count_loads e
    | Ast.If (_, a, b) -> count_loads a + count_loads b
    | Ast.Switch (_, cases, d) ->
      List.fold_left (fun acc (_, e) -> acc + count_loads e) (count_loads d)
        cases
    | Ast.Call _ | Ast.Exit _ | Ast.Migrate _ | Ast.Speculate _
    | Ast.Commit _ | Ast.Rollback _ ->
      0
  in
  check_int "both loads retained" 2
    (count_loads (Ast.fun_exn p' "main").Ast.f_body)

let test_unreachable_removed () =
  let p =
    Builder.(
      prog
        [
          func "orphan" [] (fun _ -> exit_ (int 1));
          func "main" [] (fun _ -> exit_ (int 0));
        ])
  in
  let p = Opt.optimize p in
  check "orphan removed" true (Ast.find_fun p "orphan" = None);
  check "main kept" true (Ast.find_fun p "main" <> None)

let test_no_inline_speculate () =
  (* functions containing pseudo-instructions must not be inlined *)
  let p =
    Builder.(
      prog
        [
          func "body" [ "c", Types.Tint ] (fun args ->
              match args with [ c ] -> exit_ c | _ -> assert false);
          func "spec" [] (fun _ -> speculate (fn "body") []);
          func "main" [] (fun _ -> callf "spec" []);
        ])
  in
  let p = Opt.optimize p in
  match (Ast.fun_exn p "main").Ast.f_body with
  | Ast.Call (Ast.Fun "spec", []) -> ()
  | e ->
    Alcotest.failf "speculating function was inlined: %s" (Pp.exp_to_string e)

(* ------------------------------------------------------------------ *)
(* Serializer                                                          *)
(* ------------------------------------------------------------------ *)

let roundtrip name p =
  let s = Serial.encode p in
  let p' = Serial.decode s in
  check_str (name ^ " round-trips") (Pp.program_to_string p)
    (Pp.program_to_string p');
  check (name ^ " stays well-typed") (Typecheck.well_typed p)
    (Typecheck.well_typed p')

let test_serial_roundtrip () =
  roundtrip "trivial" trivial_program;
  roundtrip "loop" loop_program;
  roundtrip "heap" heap_program

let test_serial_stable () =
  let s1 = Serial.encode loop_program in
  let s2 = Serial.encode (Serial.decode s1) in
  check_str "encoding is canonical" s1 s2

let test_serial_corrupt () =
  let s = Serial.encode trivial_program in
  (* flip one byte in the body *)
  let b = Bytes.of_string s in
  let k = Bytes.length b - 3 in
  Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0xff));
  (match Serial.decode (Bytes.to_string b) with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupted image accepted");
  (* truncation *)
  (match Serial.decode (String.sub s 0 (String.length s / 2)) with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated image accepted");
  (* bad magic *)
  match Serial.decode ("XXXX" ^ String.sub s 4 (String.length s - 4)) with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted"

let test_serial_floats () =
  let weird = [ 0.1; -0.0; infinity; neg_infinity; 1e-300; Float.pi ] in
  List.iter
    (fun f ->
      let p =
        Builder.(
          prog
            [
              func "main" [] (fun _ ->
                  atom Types.Tfloat (float f) (fun x ->
                      unop Types.Tint Ast.Int_of_float x (fun n -> exit_ n)));
            ])
      in
      let p' = Serial.decode (Serial.encode p) in
      check_str
        (Printf.sprintf "float %h round-trips" f)
        (Pp.program_to_string p) (Pp.program_to_string p'))
    weird;
  (* NaN: bit pattern must survive even though NaN <> NaN *)
  let p =
    Builder.(
      prog
        [
          func "main" [] (fun _ ->
              atom Types.Tfloat (float Float.nan) (fun _ -> exit_ (int 0)));
        ])
  in
  let s = Serial.encode p in
  check_str "NaN canonical" s (Serial.encode (Serial.decode s))

(* qcheck: random types round-trip through a program embedding *)
let ty_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneofl
              [ Types.Tunit; Types.Tint; Types.Tfloat; Types.Tbool;
                Types.Traw ]
          else
            frequency
              [
                3, oneofl [ Types.Tint; Types.Tfloat; Types.Tbool ];
                1, map (fun t -> Types.Tptr t) (self (n / 2));
                1, map (fun c -> Types.Tenum (1 + abs c mod 16)) small_int;
                ( 1,
                  map
                    (fun ts -> Types.Ttuple ts)
                    (list_size (int_range 1 4) (self (n / 3))) );
                ( 1,
                  map
                    (fun ts -> Types.Tfun ts)
                    (list_size (int_range 0 3) (self (n / 3))) );
              ])
        (min n 12))

let prop_ty_roundtrip =
  QCheck.Test.make ~count:200 ~name:"random types round-trip via nil atom"
    (QCheck.make ty_gen ~print:Types.to_string)
    (fun t ->
      (* embed the type in a program through a Nil atom and a parameter *)
      let v = Var.fresh "p" in
      let body =
        Ast.Let_ext (Var.fresh "u", Types.Tunit, "sink", [ Ast.Var v ],
                     Ast.Exit (Ast.Int 0))
      in
      let p =
        Ast.program ~main:"main"
          [
            { Ast.f_name = "f"; f_params = [ v, t ]; f_body = body };
            { Ast.f_name = "main"; f_params = []; f_body = Ast.Exit (Ast.Int 0) };
          ]
      in
      let p' = Serial.decode (Serial.encode p) in
      Types.equal (List.assoc "f" (List.map (fun n -> n, Ast.fun_exn p' n) [ "f" ])
                   |> fun fd -> snd (List.hd fd.Ast.f_params))
        t)

let prop_exp_size_positive =
  QCheck.Test.make ~count:100 ~name:"exp_size positive on random chains"
    QCheck.(int_range 1 40)
    (fun n ->
      let rec build k =
        if k = 0 then Ast.Exit (Ast.Int 0)
        else
          Ast.Let_binop
            (Var.fresh "x", Types.Tint, Ast.Add, Ast.Int k, Ast.Int 1,
             build (k - 1))
      in
      Ast.exp_size (build n) = n + 1)

let suites =
  [
    ( "fir.types",
      [
        Alcotest.test_case "structural equality" `Quick test_type_equal;
        Alcotest.test_case "predicates" `Quick test_type_predicates;
        Alcotest.test_case "pretty printing" `Quick test_type_pp;
      ] );
    ( "fir.var",
      [
        Alcotest.test_case "fresh uniqueness" `Quick test_var_fresh;
        Alcotest.test_case "of_id counter bump" `Quick test_var_of_id;
      ] );
    ( "fir.typecheck",
      [
        Alcotest.test_case "well-typed programs" `Quick test_well_typed;
        Alcotest.test_case "int condition rejected" `Quick test_ill_typed_cond;
        Alcotest.test_case "arity mismatch rejected" `Quick
          test_ill_typed_arity;
        Alcotest.test_case "argument mismatch rejected" `Quick
          test_ill_typed_arg;
        Alcotest.test_case "enum range rejected" `Quick
          test_ill_typed_enum_range;
        Alcotest.test_case "projection bounds rejected" `Quick
          test_ill_typed_proj;
        Alcotest.test_case "speculate entry signature" `Quick
          test_ill_typed_speculate;
        Alcotest.test_case "speculation program accepted" `Quick
          test_speculate_ok;
        Alcotest.test_case "main with params rejected" `Quick
          test_ill_typed_main_params;
        Alcotest.test_case "nil of scalar rejected" `Quick test_ill_typed_nil;
        Alcotest.test_case "strict extern mode" `Quick test_strict_externs;
        Alcotest.test_case "extern signature mismatch" `Quick
          test_extern_signature_mismatch;
      ] );
    ( "fir.ast",
      [
        Alcotest.test_case "free variables" `Quick test_free_vars;
        Alcotest.test_case "bound not free" `Quick test_bound_not_free;
        Alcotest.test_case "called functions" `Quick test_called_funs;
      ] );
    ( "fir.opt",
      [
        Alcotest.test_case "constant folding" `Quick test_constant_fold;
        Alcotest.test_case "if folding" `Quick test_fold_if;
        Alcotest.test_case "switch folding" `Quick test_fold_switch;
        Alcotest.test_case "dead code elimination" `Quick test_dead_code;
        Alcotest.test_case "trapping ops preserved" `Quick
          test_div_not_eliminated;
        Alcotest.test_case "inlining" `Quick test_inline;
        Alcotest.test_case "unreachable functions removed" `Quick
          test_unreachable_removed;
        Alcotest.test_case "CSE removes duplicates" `Quick test_cse_dedups;
        Alcotest.test_case "CSE commutativity" `Quick test_cse_commutative;
        Alcotest.test_case "CSE never touches loads" `Quick
          test_cse_not_loads;
        Alcotest.test_case "speculation never inlined" `Quick
          test_no_inline_speculate;
      ] );
    ( "fir.serial",
      [
        Alcotest.test_case "round-trip" `Quick test_serial_roundtrip;
        Alcotest.test_case "canonical encoding" `Quick test_serial_stable;
        Alcotest.test_case "corruption detected" `Quick test_serial_corrupt;
        Alcotest.test_case "float exactness" `Quick test_serial_floats;
        QCheck_alcotest.to_alcotest prop_ty_roundtrip;
        QCheck_alcotest.to_alcotest prop_exp_size_positive;
      ] );
  ]
