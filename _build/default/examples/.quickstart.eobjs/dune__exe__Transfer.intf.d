examples/transfer.mli:
