examples/grid_checkpoint.ml: Array List Mcc Net Printf String
