examples/buffer_overflow.mli:
