examples/quickstart.mli:
