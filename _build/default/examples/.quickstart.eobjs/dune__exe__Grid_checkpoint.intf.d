examples/grid_checkpoint.mli:
