examples/transfer.ml: List Mcc Net Option Printf String Vm
