examples/quickstart.ml: Mcc Printf
