examples/migration_demo.ml: List Mcc Net Option Printf Vm
