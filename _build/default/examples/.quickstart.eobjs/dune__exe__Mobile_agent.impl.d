examples/mobile_agent.ml: List Mcc Net Printf Vm
