examples/buffer_overflow.ml: List Mcc Printf String
