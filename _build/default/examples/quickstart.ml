(* Quickstart: compile and run programs with the MCC library.

     dune exec examples/quickstart.exe

   Shows the three-line workflow (compile -> run -> inspect), the two
   front-ends targeting the same FIR, both execution backends, and the
   speculation primitives doing their job from plain C. *)

let banner title =
  Printf.printf "\n=== %s ===\n" title

let () =
  banner "1. Compile and run mini-C";
  let fir =
    Mcc.Api.compile_exn
      (Mcc.Api.C
         {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() {
  print_str("fib(20) = ");
  print_int(fib(20));
  print_nl();
  return 0;
}
|})
  in
  let out = Mcc.Api.run fir in
  print_string out.Mcc.Api.o_output;
  Printf.printf "(exit %s, %d basic blocks, %d simulated cycles)\n"
    (match Mcc.Api.exit_code out with Ok n -> string_of_int n | Error m -> m)
    out.Mcc.Api.o_steps out.Mcc.Api.o_cycles;

  banner "2. The same pipeline compiles mini-ML";
  let fir =
    Mcc.Api.compile_exn
      (Mcc.Api.Ml
         {|
let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
let main = print_int (fib 20); print_newline (); 0
|})
  in
  let out = Mcc.Api.run fir in
  Printf.printf "ML says: %s" out.Mcc.Api.o_output;

  banner "2b. ... and mini-Pascal, to the same FIR";
  let fir =
    Mcc.Api.compile_exn
      (Mcc.Api.Pas
         {|
program quick;
function fib(n: integer): integer;
begin
  if n < 2 then fib := n else fib := fib(n - 1) + fib(n - 2)
end;
begin
  writeln('Pascal says: ', fib(20))
end.
|})
  in
  let out = Mcc.Api.run fir in
  print_string out.Mcc.Api.o_output;

  banner "3. Reference interpreter vs native (MASM) backend";
  let fir =
    Mcc.Api.compile_exn (Mcc.Api.C "int main() { return 41 + 1; }")
  in
  let a = Mcc.Api.run ~backend:Mcc.Api.Reference fir in
  let b = Mcc.Api.run ~backend:Mcc.Api.Native fir in
  Printf.printf "reference: %s   native: %s\n"
    (match Mcc.Api.exit_code a with Ok n -> string_of_int n | Error m -> m)
    (match Mcc.Api.exit_code b with Ok n -> string_of_int n | Error m -> m);

  banner "4. Speculation from C: write, abort, state restored";
  let fir =
    Mcc.Api.compile_exn
      (Mcc.Api.C
         {|
int main() {
  int *cell = alloc_int(1);
  cell[0] = 5;
  int specid = speculate();
  if (specid > 0) {
    cell[0] = 99;               // speculative write
    print_str("inside speculation: cell = ");
    print_int(cell[0]); print_nl();
    abort(specid);              // roll everything back
  }
  print_str("after rollback:     cell = ");
  print_int(cell[0]); print_nl();
  return cell[0];
}
|})
  in
  let out = Mcc.Api.run fir in
  print_string out.Mcc.Api.o_output;

  banner "5. Runtime safety: a forged pointer traps, never corrupts";
  let fir =
    Mcc.Api.compile_exn
      (Mcc.Api.C
         "int main() { int *a = alloc_int(2); int *evil = a + 999999; \
          return evil[0]; }")
  in
  (match Mcc.Api.exit_code (Mcc.Api.run fir) with
  | Error m -> Printf.printf "trapped as expected: %s\n" m
  | Ok _ -> Printf.printf "UNEXPECTED: forged pointer read succeeded\n");
  print_newline ()
