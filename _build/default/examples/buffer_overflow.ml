(* Surviving a buffer overflow with speculation (paper, Section 2).

     dune exec examples/buffer_overflow.exe

   "Applications that suffer from unchecked buffer overflow issues could
   be instrumented using speculative execution... if a buffer overflow
   occurs the program is rolled back to where the memory allocation
   occurred and a different path of execution (potentially allocating
   more memory and retrying) could be taken."  (The Rx comparison.)

   The writer below is instrumented with a speculation around the
   allocation: when the runtime bounds check fires mid-way through a
   partially-completed write, the speculation rolls the process back to
   the allocation point — undoing the PARTIAL write too — and the retry
   path allocates a bigger buffer.  Without the primitives the same bug
   is a crash. *)

let instrumented =
  {|
int fill(int *buf, int cap, int n) {
  // buggy: writes n items without checking cap...
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (i >= cap) { return 0 - 1; }   // the runtime bound check, surfaced
    buf[i] = i * i;
  }
  return n;
}

int main() {
  int n = 24;            // items to write
  int size = 8;          // first guess, too small
  int specid = speculate();
  int attempt = specid;
  if (attempt < 0) {
    attempt = 0 - attempt;
    size = size * 4;     // retry path: allocate more and try again
  }
  int *buf = alloc_int(size);
  int wrote = fill(buf, size, n);
  if (wrote != n) {
    print_str("overflow detected at capacity ");
    print_int(size);
    print_str(", rolling back to the allocation site\n");
    abort(attempt);
  }
  commit(attempt);
  print_str("wrote ");
  print_int(wrote);
  print_str(" items into a buffer of capacity ");
  print_int(size);
  print_nl();
  int check = 0;
  int i;
  for (i = 0; i < n; i = i + 1) check = check + buf[i];
  return check;
}
|}

let crashing =
  {|
int main() {
  int *buf = alloc_int(8);
  int i;
  for (i = 0; i < 24; i = i + 1) {
    buf[i] = i * i;   // unchecked: walks off the end
  }
  return 0;
}
|}

let () =
  print_endline "Speculative recovery from a buffer overflow";
  print_endline "===========================================\n";

  print_endline "-- uninstrumented program:";
  let fir = Mcc.Api.compile_exn (Mcc.Api.C crashing) in
  (match Mcc.Api.exit_code (Mcc.Api.run fir) with
  | Error m -> Printf.printf "   crashed: %s\n" m
  | Ok n -> Printf.printf "   UNEXPECTED exit %d\n" n);
  print_endline
    "   (the MCC runtime turns the overflow into a trap — on a raw C\n\
     \   runtime this is silent memory corruption)\n";

  print_endline "-- instrumented with speculate/abort around the allocation:";
  let fir = Mcc.Api.compile_exn (Mcc.Api.C instrumented) in
  let out = Mcc.Api.run fir in
  String.split_on_char '\n' out.Mcc.Api.o_output
  |> List.iter (fun l -> if l <> "" then Printf.printf "   %s\n" l);
  match Mcc.Api.exit_code out with
  | Ok n -> Printf.printf "   exit %d (sum of the 24 squares = 4324)\n" n
  | Error m -> Printf.printf "   failed: %s\n" m
