(** The MASM emulator — the "native-code runtime" stand-in.

    Executes compiled instruction arrays with a real register file and
    spill slots, charging the architecture's per-class cycle costs.
    Semantically identical to {!Interp} (tested differentially); the
    pseudo-instructions trap to the same {!Process} entry points. *)

exception Emulator_error of string

type t

val create : Masm.image -> Process.t -> t
(** @raise Emulator_error if the image's architecture does not match the
    process's (cross-architecture execution requires recompilation). *)

val step : ?extern:Process.handler -> t -> unit
val run :
  ?extern:Process.handler -> ?max_steps:int -> t -> Process.status

val context_switch_cycles : Arch.t -> int
(** Save + restore one full register file plus scheduler traps — the
    experiment E5 baseline. *)
