(** Simulated target architectures (paper, Section 3).

    Two flavours stand in for the paper's native IA32 back-end and
    simulated RISC runtime.  They differ in word size, endianness,
    register count and per-instruction-class cycle costs, so heterogeneous
    migration between them exercises the real translation issues
    (recompilation required; byte order handled by the wire format). *)

type endianness = Little | Big

type instr_class =
  | Alu  (** register arithmetic / moves *)
  | Mem  (** heap loads/stores, including the pointer-table check *)
  | Branch
  | Call_ret  (** calls, returns, argument shuffling *)
  | Trap  (** runtime traps: allocation, pseudo-instructions *)

type t = {
  name : string;
  word_bits : int;
  endianness : endianness;
  registers : int;
  clock_mhz : int;
  cycles : instr_class -> int;
}

val cisc32 : t
(** CISC-like, 32-bit, little-endian, 6 registers, 700 MHz (the paper's
    IA32 testbed machines). *)

val risc64 : t
(** RISC-like, 64-bit, big-endian, 24 registers, 500 MHz. *)

val all : t list

val by_name : string -> t
(** @raise Invalid_argument on an unknown name. *)

val equal : t -> t -> bool

val seconds : t -> int -> float
(** Simulated seconds for a cycle count on this architecture. *)
