(* External functions provided by the runtime.

   Externs are the FIR's only non-tail calls: runtime services that return
   a value to the current basic block.  This module defines the base set
   (I/O to the process output buffer, deterministic randomness, clocks,
   speculation introspection) together with their type signatures, which
   the typechecker validates in strict mode (e.g. on a migration server).

   Host environments extend the base set: the simulated cluster adds
   message passing and fault-injected storage (lib/net), and applications
   may register their own.  [combine] chains handlers. *)

open Runtime

let base_signatures : (string * (Fir.Types.ty list * Fir.Types.ty)) list =
  let open Fir.Types in
  [
    "print_int", ([ Tint ], Tunit);
    "print_float", ([ Tfloat ], Tunit);
    "print_string", ([ Traw ], Tunit);
    "print_newline", ([], Tunit);
    "rand", ([ Tint ], Tint);
    "cycles", ([], Tint);
    "steps", ([], Tint);
    "pid", ([], Tint);
    "spec_level", ([], Tint);
    "spec_saved_blocks", ([], Tint);
    "heap_used", ([], Tint);
    "gc_minor", ([], Tunit);
    "gc_major", ([], Tunit);
    "float_sqrt", ([ Tfloat ], Tfloat);
    "float_abs", ([ Tfloat ], Tfloat);
    (* charge N microseconds of simulated work on the process's clock:
       lets a small verification kernel stand in for a production-scale
       computation without burning host time (used by the grid app) *)
    "work_us", ([ Tint ], Tunit);
  ]

let signature_lookup extra name =
  match List.assoc_opt name extra with
  | Some s -> Some s
  | None -> List.assoc_opt name base_signatures

(* The typechecker hook for the base set only. *)
let signatures : Fir.Typecheck.extern_lookup = signature_lookup []

let bad_args name args =
  raise
    (Process.Extern_failure
       (Printf.sprintf "extern %s: bad arguments (%s)" name
          (String.concat ", " (List.map Value.to_string args))))

(* The base handler.  All output goes to the process's output buffer so
   tests and the simulated cluster can observe it; randomness is drawn from
   the process's seeded state so runs are reproducible. *)
let base : Process.handler =
  fun proc name args ->
  match name, args with
  | "print_int", [ Value.Vint n ] ->
    Buffer.add_string proc.Process.output (string_of_int n);
    Value.Vunit
  | "print_float", [ Value.Vfloat f ] ->
    Buffer.add_string proc.Process.output (Printf.sprintf "%.6g" f);
    Value.Vunit
  | "print_string", [ Value.Vptr (idx, 0) ] ->
    Buffer.add_string proc.Process.output
      (Heap.raw_to_string proc.Process.heap idx);
    Value.Vunit
  | "print_newline", [] ->
    Buffer.add_char proc.Process.output '\n';
    Value.Vunit
  | "rand", [ Value.Vint bound ] ->
    if bound <= 0 then bad_args name args
    else Value.Vint (Random.State.int proc.Process.rng bound)
  | "cycles", [] -> Value.Vint proc.Process.cycles
  | "steps", [] -> Value.Vint proc.Process.steps
  | "pid", [] -> Value.Vint proc.Process.pid
  | "spec_level", [] -> Value.Vint (Spec.Engine.depth proc.Process.spec)
  | "spec_saved_blocks", [] ->
    Value.Vint
      (List.length (Spec.Engine.records proc.Process.spec))
  | "heap_used", [] -> Value.Vint (Heap.used_cells proc.Process.heap)
  | "gc_minor", [] ->
    ignore (Process.collect proc Gc.Minor);
    Value.Vunit
  | "gc_major", [] ->
    ignore (Process.collect proc Gc.Major);
    Value.Vunit
  | "float_sqrt", [ Value.Vfloat f ] -> Value.Vfloat (sqrt f)
  | "float_abs", [ Value.Vfloat f ] -> Value.Vfloat (Float.abs f)
  | "work_us", [ Value.Vint us ] ->
    if us < 0 then bad_args name args
    else begin
      proc.Process.cycles <-
        proc.Process.cycles + (us * proc.Process.arch.Arch.clock_mhz);
      Value.Vunit
    end
  | ( ( "print_int" | "print_float" | "print_string" | "print_newline"
      | "rand" | "cycles" | "steps" | "pid" | "spec_level"
      | "spec_saved_blocks" | "heap_used" | "gc_minor" | "gc_major"
      | "float_sqrt" | "float_abs" | "work_us" ),
      _ ) ->
    bad_args name args
  | _ ->
    raise (Process.Extern_failure ("unknown extern " ^ name))

(* Chain two handlers: [first] wins; unknown externs fall through to
   [fallback]. *)
let combine first fallback : Process.handler =
  fun proc name args ->
  try first proc name args
  with Process.Extern_failure _ -> fallback proc name args
