(** The reference FIR interpreter.

    One {!step} executes one basic block: from the current continuation
    through straight-line bindings and branches to the next tail call,
    exit or pseudo-instruction.  Every heap access goes through the
    checked path; violations become a [Trapped] status, never undefined
    behaviour.

    The value-level helpers are shared with the {!Emulator} so the two
    engines agree on semantics by construction. *)

open Runtime

exception Trap of string

val nil_value : Value.t
(** The null reference: an invalid pointer-table index, so dereferencing
    traps. *)

val eval_unop : Fir.Ast.unop -> Value.t -> Value.t
val eval_binop : Fir.Ast.binop -> Value.t -> Value.t -> Value.t

val cast_check : Fir.Types.ty -> Value.t -> Value.t
(** The runtime representation check behind [Let_cast].
    @raise Trap on a representation mismatch. *)

val as_int : Value.t -> int
val as_bool : Value.t -> bool
val as_float : Value.t -> float
val as_ptr : Value.t -> int * int

val target_string : Process.t -> Value.t -> string
(** Decode a migration target from a raw-block pointer. *)

val step : ?extern:Process.handler -> Process.t -> unit
(** Execute one basic block; a no-op unless the process is [Running]. *)

val run :
  ?extern:Process.handler -> ?max_steps:int -> Process.t -> Process.status
(** Step until exit, trap, migration request or budget exhaustion. *)
