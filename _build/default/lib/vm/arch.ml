(* Simulated target architectures.

   The paper's MCC has a native IA32 back-end and a simulated RISC runtime
   (Section 3).  We model two architecture descriptions that differ in the
   dimensions that matter for heterogeneous migration — word size,
   endianness, register count — plus a cycle cost model used to account
   simulated execution time.  Migration between processes running on
   different architectures must go through the FIR (recompilation); only
   same-architecture migration may take the binary fast path. *)

type endianness = Little | Big

type instr_class =
  | Alu (* register arithmetic / moves *)
  | Mem (* heap loads and stores, including the pointer-table check *)
  | Branch
  | Call_ret (* calls, returns, argument shuffling *)
  | Trap (* runtime traps: allocation, pseudo-instructions *)

type t = {
  name : string;
  word_bits : int;
  endianness : endianness;
  registers : int; (* general-purpose registers available to codegen *)
  clock_mhz : int; (* converts cycles to simulated wall time *)
  cycles : instr_class -> int;
}

(* A CISC-like 32-bit little-endian machine (stands in for the paper's
   IA32 runtime): few registers, cheap memory ops. *)
let cisc32 =
  {
    name = "cisc32";
    word_bits = 32;
    endianness = Little;
    registers = 6;
    clock_mhz = 700;
    cycles =
      (function
      | Alu -> 1
      | Mem -> 3
      | Branch -> 2
      | Call_ret -> 4
      | Trap -> 20);
  }

(* A RISC-like 64-bit big-endian machine (stands in for the simulated RISC
   runtime): many registers, pricier memory ops. *)
let risc64 =
  {
    name = "risc64";
    word_bits = 64;
    endianness = Big;
    registers = 24;
    clock_mhz = 500;
    cycles =
      (function
      | Alu -> 1
      | Mem -> 4
      | Branch -> 1
      | Call_ret -> 2
      | Trap -> 24);
  }

let all = [ cisc32; risc64 ]

let by_name name =
  match List.find_opt (fun a -> String.equal a.name name) all with
  | Some a -> a
  | None -> invalid_arg ("Arch.by_name: unknown architecture " ^ name)

let equal a b = String.equal a.name b.name

(* Simulated seconds for a cycle count on this architecture. *)
let seconds arch cycles = float_of_int cycles /. (float_of_int arch.clock_mhz *. 1e6)
