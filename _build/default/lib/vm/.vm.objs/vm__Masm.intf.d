lib/vm/masm.mli: Fir Format Map
