lib/vm/interp.ml: Arch Extern Fir Function_table Heap List Pointer_table Printf Process Runtime Spec String Value
