lib/vm/masm.ml: Array Buffer Fir Format List Map Printf String
