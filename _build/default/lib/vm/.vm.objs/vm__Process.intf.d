lib/vm/process.mli: Arch Buffer Fir Function_table Gc Heap Random Runtime Spec Value
