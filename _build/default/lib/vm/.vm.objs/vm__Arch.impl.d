lib/vm/arch.ml: List String
