lib/vm/interp.mli: Fir Process Runtime Value
