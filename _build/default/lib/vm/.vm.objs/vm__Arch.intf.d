lib/vm/arch.mli:
