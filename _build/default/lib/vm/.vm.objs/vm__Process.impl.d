lib/vm/process.ml: Arch Buffer Fir Function_table Gc Heap List Random Runtime Spec Value
