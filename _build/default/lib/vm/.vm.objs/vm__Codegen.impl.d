lib/vm/codegen.ml: Arch Array Fir List Masm
