lib/vm/emulator.ml: Arch Array Extern Function_table Heap Interp List Masm Pointer_table Printf Process Runtime Spec String Value
