lib/vm/codegen.mli: Arch Fir Masm
