lib/vm/extern.mli: Fir Process
