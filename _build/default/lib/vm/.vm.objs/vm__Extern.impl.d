lib/vm/extern.ml: Arch Buffer Fir Float Gc Heap List Printf Process Random Runtime Spec String Value
