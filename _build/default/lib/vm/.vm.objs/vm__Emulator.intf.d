lib/vm/emulator.mli: Arch Masm Process
