(** External functions provided by the base runtime: output (to the
    process's buffer), deterministic randomness, clocks, GC and
    speculation introspection, and the simulated-work charge.  Host
    environments extend the set (the simulated cluster adds message
    passing and the fault-injected object store) and chain handlers with
    {!combine}. *)

val base_signatures : (string * (Fir.Types.ty list * Fir.Types.ty)) list

val signature_lookup :
  (string * (Fir.Types.ty list * Fir.Types.ty)) list ->
  Fir.Typecheck.extern_lookup
(** [signature_lookup extra] resolves [extra] first, then the base set. *)

val signatures : Fir.Typecheck.extern_lookup
(** The base set only (the default for strict typechecking). *)

val base : Process.handler

val combine : Process.handler -> Process.handler -> Process.handler
(** [combine first fallback]: [first] wins; unknown externs fall through. *)
