(* The MASM emulator: executes compiled images against a process.

   This is the "native-code runtime" stand-in.  It observes exactly the
   same semantics as the reference interpreter (the test suite checks the
   two engines produce identical results on the same programs), but it
   executes compiled instruction arrays with a real register file and
   spill slots, and charges the architecture's cycle costs per
   instruction — spill accesses cost memory cycles, so the two simulated
   architectures genuinely diverge on register-hungry code.

   Pseudo-instructions trap to the same runtime entry points
   ([Process.do_speculate] etc.) as the interpreter. *)

open Runtime

exception Emulator_error of string

type frame = {
  mutable regs : Value.t array;
  mutable spills : Value.t array;
}

type t = {
  image : Masm.image;
  proc : Process.t;
  frame : frame;
}

let create image proc =
  if not (String.equal image.Masm.im_arch proc.Process.arch.Arch.name) then
    raise
      (Emulator_error
         (Printf.sprintf "image compiled for %s, process runs on %s"
            image.Masm.im_arch proc.Process.arch.Arch.name));
  {
    image;
    proc;
    frame =
      {
        regs = Array.make proc.Process.arch.Arch.registers Value.Vunit;
        spills = [||];
      };
  }

let get_slot t = function
  | Masm.Reg r -> t.frame.regs.(r)
  | Masm.Spill s ->
    Process.charge t.proc Arch.Mem;
    t.frame.spills.(s)

let set_slot t slot v =
  match slot with
  | Masm.Reg r -> t.frame.regs.(r) <- v
  | Masm.Spill s ->
    Process.charge t.proc Arch.Mem;
    t.frame.spills.(s) <- v

let imm_value t = function
  | Masm.Iunit -> Value.Vunit
  | Masm.Iint n -> Value.Vint n
  | Masm.Ifloat f -> Value.Vfloat f
  | Masm.Ibool b -> Value.Vbool b
  | Masm.Ienum (c, v) -> Value.Venum (c, v)
  | Masm.Ifun f -> Process.fun_value t.proc f
  | Masm.Inil -> Interp.nil_value

let operand t = function
  | Masm.Slot s -> get_slot t s
  | Masm.Imm i -> imm_value t i

(* Install a continuation's arguments into a fresh frame for [fname]. *)
let enter_function t fname args =
  let fn =
    match Masm.fn t.image fname with
    | Some fn -> fn
    | None -> raise (Emulator_error ("no compiled code for " ^ fname))
  in
  if List.length fn.Masm.fn_params <> List.length args then
    raise
      (Emulator_error
         (Printf.sprintf "arity mismatch calling %s" fname));
  t.frame.spills <- Array.make (max 1 fn.Masm.fn_spills) Value.Vunit;
  Array.fill t.frame.regs 0 (Array.length t.frame.regs) Value.Vunit;
  List.iter2 (fun slot v -> set_slot t slot v) fn.Masm.fn_params args;
  fn

(* Execute one basic block (mirrors Interp.step). *)
let step ?(extern = Extern.base) t =
  let proc = t.proc in
  match proc.Process.status with
  | Process.Exited _ | Process.Trapped _ | Process.Migrating _ -> ()
  | Process.Running -> (
    let heap = proc.Process.heap in
    match
      let fname, args = proc.Process.cont in
      let fn = enter_function t fname args in
      Process.charge proc Arch.Call_ret;
      let code = fn.Masm.fn_code in
      let pc = ref 0 in
      let running = ref true in
      while !running do
        if !pc < 0 || !pc >= Array.length code then
          raise (Emulator_error "program counter out of range");
        let i = code.(!pc) in
        incr pc;
        match i with
        | Masm.Mov (d, a) ->
          Process.charge proc Arch.Alu;
          set_slot t d (operand t a)
        | Masm.Cast (d, ty, a) ->
          Process.charge proc Arch.Alu;
          set_slot t d (Interp.cast_check ty (operand t a))
        | Masm.Unop (o, d, a) ->
          Process.charge proc Arch.Alu;
          set_slot t d (Interp.eval_unop o (operand t a))
        | Masm.Binop (o, d, a, b) ->
          Process.charge proc Arch.Alu;
          set_slot t d (Interp.eval_binop o (operand t a) (operand t b))
        | Masm.Alloc_tuple (d, fields) ->
          Process.charge proc Arch.Trap;
          let idx = Heap.alloc_tuple heap (List.map (operand t) fields) in
          set_slot t d (Value.Vptr (idx, 0))
        | Masm.Alloc_array (d, n, init) ->
          Process.charge proc Arch.Trap;
          let size = Interp.as_int (operand t n) in
          if size < 0 then raise (Interp.Trap "negative array size");
          let idx =
            Heap.alloc heap ~tag:Heap.Array ~size ~init:(operand t init)
          in
          set_slot t d (Value.Vptr (idx, 0))
        | Masm.Alloc_string (d, s) ->
          Process.charge proc Arch.Trap;
          set_slot t d (Value.Vptr (Heap.alloc_raw heap s, 0))
        | Masm.Load (d, p, dyn, k) ->
          Process.charge proc Arch.Mem;
          let idx, off = Interp.as_ptr (operand t p) in
          let dyn = Interp.as_int (operand t dyn) in
          set_slot t d (Heap.read heap idx (off + dyn + k))
        | Masm.Store (p, dyn, k, v) ->
          Process.charge proc Arch.Mem;
          let idx, off = Interp.as_ptr (operand t p) in
          let dyn = Interp.as_int (operand t dyn) in
          Heap.write heap idx (off + dyn + k) (operand t v)
        | Masm.Ext (d, name, args) ->
          Process.charge proc Arch.Trap;
          set_slot t d (extern proc name (List.map (operand t) args))
        | Masm.Jmp target ->
          Process.charge proc Arch.Branch;
          pc := target
        | Masm.Jz (c, target) ->
          Process.charge proc Arch.Branch;
          if not (Interp.as_bool (operand t c)) then pc := target
        | Masm.Switch (v, cases, default) ->
          Process.charge proc Arch.Branch;
          let n =
            match operand t v with
            | Value.Vint n | Value.Venum (_, n) -> n
            | v ->
              raise (Interp.Trap ("switch on non-integer " ^ Value.to_string v))
          in
          pc :=
            (match List.assoc_opt n cases with
            | Some target -> target
            | None -> default)
        | Masm.Tail_call (f, args) ->
          Process.charge proc Arch.Call_ret;
          let name = Process.fun_name proc (operand t f) in
          proc.Process.cont <- name, List.map (operand t) args;
          running := false
        | Masm.Exit v ->
          Process.charge proc Arch.Call_ret;
          proc.Process.status <-
            Process.Exited (Interp.as_int (operand t v));
          running := false
        | Masm.Migrate (label, dst, f, args) ->
          Process.do_migrate proc ~label
            ~target:(Interp.target_string proc (operand t dst))
            ~entry:(Process.fun_name proc (operand t f))
            ~args:(List.map (operand t) args);
          running := false
        | Masm.Speculate (f, args) ->
          Process.do_speculate proc
            ~entry:(Process.fun_name proc (operand t f))
            ~args:(List.map (operand t) args);
          running := false
        | Masm.Commit (l, f, args) ->
          Process.do_commit proc
            ~level:(Interp.as_int (operand t l))
            ~entry:(Process.fun_name proc (operand t f))
            ~args:(List.map (operand t) args);
          running := false
        | Masm.Rollback (l, c) ->
          Process.do_rollback proc
            ~level:(Interp.as_int (operand t l))
            ~code:(Interp.as_int (operand t c));
          running := false
      done
    with
    | () ->
      proc.Process.steps <- proc.Process.steps + 1;
      Process.maybe_collect proc
    | exception Interp.Trap msg ->
      proc.Process.status <- Process.Trapped msg
    | exception Emulator_error msg ->
      proc.Process.status <- Process.Trapped ("emulator: " ^ msg)
    | exception Heap.Runtime_error msg ->
      proc.Process.status <- Process.Trapped ("heap: " ^ msg)
    | exception Pointer_table.Invalid_pointer msg ->
      proc.Process.status <- Process.Trapped ("pointer: " ^ msg)
    | exception Function_table.Invalid_function msg ->
      proc.Process.status <- Process.Trapped ("function: " ^ msg)
    | exception Spec.Engine.Invalid_level msg ->
      proc.Process.status <- Process.Trapped ("speculation: " ^ msg)
    | exception Process.Extern_failure msg ->
      proc.Process.status <- Process.Trapped ("extern: " ^ msg)
    | exception Process.Process_error msg ->
      proc.Process.status <- Process.Trapped msg)

let run ?(extern = Extern.base) ?(max_steps = 10_000_000) t =
  let budget = ref max_steps in
  while
    (match t.proc.Process.status with
     | Process.Running -> true
     | Process.Exited _ | Process.Trapped _ | Process.Migrating _ -> false)
    && !budget > 0
  do
    step ~extern t;
    decr budget
  done;
  t.proc.Process.status

(* The cost of a context switch on this runtime: save and restore one full
   register file plus scheduler bookkeeping.  Used by experiment E5. *)
let context_switch_cycles (arch : Arch.t) =
  (* save + restore every register (memory traffic) plus a trap in and out *)
  (2 * arch.Arch.registers * arch.Arch.cycles Arch.Mem)
  + (2 * arch.Arch.cycles Arch.Trap)
