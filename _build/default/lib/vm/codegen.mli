(** FIR -> MASM code generation (paper, Section 3: elaborating the FIR to
    machine-specific assembly, introducing runtime safety checks).

    Register allocation is per-function — parameters then locals into the
    target's general-purpose registers, overflow into spill slots — so
    register pressure shows up in simulated cycle counts. *)

exception Codegen_error of string

val compile : ?arch:Arch.t -> Fir.Ast.program -> Masm.image

val compile_fun : Arch.t -> Fir.Ast.fundef -> Masm.fn

(** {2 Simulated compilation costs}

    Calibrated against the paper's reported recompilation times; see
    EXPERIMENTS.md ("Calibration"). *)

val compile_cycles_per_node : int
val simulated_compile_cycles : Fir.Ast.program -> int

val link_cycles_per_instr : int
val simulated_link_cycles : Masm.image -> int
(** Linking the compiled code with the resume stub (paper, Section
    4.2.2) — charged on both migration paths. *)
