(* Migration protocols and target strings (paper, Section 4.2.1).

   The string argument of the [migrate] pseudo-instruction selects one of
   three protocols:

   - "mcc://host"          migrate: ship the process to a migration server
                           for immediate execution; terminate the source on
                           success, continue locally on failure.
   - "suspend://path"      suspend: write the process image to a file and
                           terminate if the write succeeds.
   - "checkpoint://path"   checkpoint: write the image and KEEP RUNNING.

   Checkpoint files are "executable" in the paper's sense: they are
   self-contained resumable images (see Pack.unpack / bin/mcc resume). *)

type t =
  | Migrate_to of string (* host name *)
  | Suspend_to of string (* file / storage path *)
  | Checkpoint_to of string

exception Bad_target of string

let parse s =
  let split_scheme s =
    match String.index_opt s ':' with
    | Some i
      when i + 2 < String.length s
           && s.[i + 1] = '/'
           && s.[i + 2] = '/' ->
      Some
        ( String.sub s 0 i,
          String.sub s (i + 3) (String.length s - i - 3) )
    | Some _ | None -> None
  in
  match split_scheme s with
  | Some ("mcc", host) when host <> "" -> Migrate_to host
  | Some ("suspend", path) when path <> "" -> Suspend_to path
  | Some (("checkpoint" | "ckpt"), path) when path <> "" ->
    Checkpoint_to path
  | Some _ | None ->
    raise (Bad_target (Printf.sprintf "unparseable migration target %S" s))

let parse_opt s = match parse s with t -> Some t | exception Bad_target _ -> None

let to_string = function
  | Migrate_to host -> "mcc://" ^ host
  | Suspend_to path -> "suspend://" ^ path
  | Checkpoint_to path -> "checkpoint://" ^ path

(* Does the source process keep running after this protocol succeeds? *)
let continues_after_success = function
  | Checkpoint_to _ -> true
  | Migrate_to _ | Suspend_to _ -> false
