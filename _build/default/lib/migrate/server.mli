(** The migration server (paper, Section 4.2.1): listens for inbound
    process images, verifies, recompiles and reconstructs them.
    Transport-agnostic — the simulated cluster's daemons and the CLI both
    drive it with received bytes. *)

open Vm

type request_outcome = {
  o_pid : int;
  o_costs : Pack.unpack_costs;
  o_process : Process.t;
  o_masm : Masm.image;
}

type stats = {
  mutable accepted : int;
  mutable rejected : int;
  mutable bytes_received : int;
  mutable recompilations : int;
}

type t

val create :
  ?trusted:bool ->
  ?extern_signatures:Fir.Typecheck.extern_lookup ->
  ?first_pid:int -> Arch.t -> t

val stats : t -> stats

val handle : ?seed:int -> t -> string -> (request_outcome, string) result
(** Handle one inbound migration; assigns a fresh pid on success. *)
