(** Migration protocols and target strings (paper, Section 4.2.1).

    The [migrate] pseudo-instruction's string argument selects the
    protocol:
    - ["mcc://host"]: ship the process to a migration server and
      terminate the source on success; continue locally on failure.
    - ["suspend://path"]: write the image to a file and terminate.
    - ["checkpoint://path"] (alias ["ckpt://"]): write the image and keep
      running. *)

type t =
  | Migrate_to of string  (** host name *)
  | Suspend_to of string  (** file / storage path *)
  | Checkpoint_to of string

exception Bad_target of string

val parse : string -> t
(** @raise Bad_target on an unparseable target. *)

val parse_opt : string -> t option
val to_string : t -> string

val continues_after_success : t -> bool
(** Does the source process keep running when the protocol succeeds?
    Only checkpoints do. *)
