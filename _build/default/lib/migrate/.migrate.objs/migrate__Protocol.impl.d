lib/migrate/protocol.ml: Printf String
