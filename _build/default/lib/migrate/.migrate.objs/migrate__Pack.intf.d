lib/migrate/pack.mli: Arch Fir Masm Process Runtime Vm Wire
