lib/migrate/server.mli: Arch Fir Masm Pack Process Vm
