lib/migrate/wire.mli: Buffer Fir Runtime Spec Value
