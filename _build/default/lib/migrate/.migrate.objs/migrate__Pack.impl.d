lib/migrate/pack.ml: Arch Codegen Extern Fir Function_table Gc Heap List Masm Pointer_table Printf Process Runtime Spec String Value Vm Wire
