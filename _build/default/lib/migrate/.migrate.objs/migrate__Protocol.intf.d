lib/migrate/protocol.mli:
