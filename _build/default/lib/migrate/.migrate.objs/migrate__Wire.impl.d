lib/migrate/wire.ml: Array Buffer Fir Hashtbl Heap List Printf Runtime Spec String Value
