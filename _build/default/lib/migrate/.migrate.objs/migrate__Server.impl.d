lib/migrate/server.ml: Arch Extern Fir Masm Pack Process String Vm
