(* Mini-C abstract syntax.

   The C subset the paper's examples (Figures 1 and 2) are written in:
   int/float/void and pointers, function definitions, C control flow
   (if/while/for/break/continue/return), arithmetic and comparison
   operators, array indexing through pointers, and the MCC primitives as
   builtins — speculate() / commit(id) / abort(id) / migrate(target) —
   plus the runtime's I/O, allocation, and message-passing externs.

   Deviations from ISO C, documented here once:
   - declarations are function-scoped (as if hoisted), names unique per
     function;
   - [&&]/[||] evaluate both operands (no short-circuit);
   - no address-of, structs, or function pointers;
   - arrays come from alloc_int/alloc_float, not declarators;
   - "0 is false" applies in conditions; comparisons yield 0/1 ints. *)

type cty =
  | Cint
  | Cfloat
  | Cvoid
  | Cptr of cty
  | Cstr (* char* : raw byte data *)

let rec cty_to_string = function
  | Cint -> "int"
  | Cfloat -> "float"
  | Cvoid -> "void"
  | Cptr t -> cty_to_string t ^ "*"
  | Cstr -> "char*"

let rec cty_equal a b =
  match a, b with
  | Cint, Cint | Cfloat, Cfloat | Cvoid, Cvoid | Cstr, Cstr -> true
  | Cptr a, Cptr b -> cty_equal a b
  | (Cint | Cfloat | Cvoid | Cptr _ | Cstr), _ -> false

type pos = { line : int; col : int }

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Brem
  | Band
  | Bor
  | Bxor
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Bland (* && *)
  | Blor (* || *)

type unop = Uneg | Unot

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Eint of int
  | Efloat of float
  | Estr of string
  | Evar of string
  | Eindex of expr * expr
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list
  | Ecast of cty * expr

type stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | Sdecl of cty * string * expr option
  | Sassign of string * expr
  | Sindex_assign of expr * expr * expr (* base[index] = value *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sexpr of expr
  | Sbreak
  | Scontinue

type fundecl = {
  fd_name : string;
  fd_ret : cty;
  fd_params : (cty * string) list;
  fd_body : stmt list;
  fd_pos : pos;
}

type program = fundecl list
