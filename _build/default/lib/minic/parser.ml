(* Mini-C recursive-descent parser with precedence climbing. *)

open Ast

exception Parse_error of string

type state = { mutable toks : Lexer.lexed list }

let err pos fmt =
  Printf.ksprintf
    (fun s ->
      raise (Parse_error (Printf.sprintf "%d:%d: %s" pos.line pos.col s)))
    fmt

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> raise (Parse_error "internal: past end of input")

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect_punct st s =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tpunct p when String.equal p s -> ()
  | tok -> err t.Lexer.tpos "expected %S, found %s" s (Lexer.token_to_string tok)

let accept_punct st s =
  match (peek st).Lexer.tok with
  | Lexer.Tpunct p when String.equal p s ->
    advance st;
    true
  | _ -> false

let accept_kw st s =
  match (peek st).Lexer.tok with
  | Lexer.Tkw k when String.equal k s ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tident x -> x
  | tok -> err t.Lexer.tpos "expected identifier, found %s"
             (Lexer.token_to_string tok)

(* type = ("int" | "float" | "void" | "char") "*"* ; char must be char* *)
let parse_base_ty st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tkw "int" -> Some Cint
  | Lexer.Tkw "float" -> Some Cfloat
  | Lexer.Tkw "void" -> Some Cvoid
  | Lexer.Tkw "char" -> None (* must be followed by * *)
  | tok -> err t.Lexer.tpos "expected a type, found %s"
             (Lexer.token_to_string tok)

let parse_ty st =
  let pos = (peek st).Lexer.tpos in
  match parse_base_ty st with
  | None ->
    (* char: only char* (possibly char**... rejected) is supported *)
    if accept_punct st "*" then Cstr
    else err pos "bare 'char' is not supported; use char*"
  | Some base ->
    let rec stars acc = if accept_punct st "*" then stars (Cptr acc) else acc in
    stars base

let is_ty_start st =
  match (peek st).Lexer.tok with
  | Lexer.Tkw ("int" | "float" | "void" | "char") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* precedence, loosest first *)
let binop_of_punct = function
  | "||" -> Some (Blor, 1)
  | "&&" -> Some (Bland, 2)
  | "|" -> Some (Bor, 3)
  | "^" -> Some (Bxor, 4)
  | "&" -> Some (Band, 5)
  | "==" -> Some (Beq, 6)
  | "!=" -> Some (Bne, 6)
  | "<" -> Some (Blt, 7)
  | "<=" -> Some (Ble, 7)
  | ">" -> Some (Bgt, 7)
  | ">=" -> Some (Bge, 7)
  | "<<" -> Some (Bshl, 8)
  | ">>" -> Some (Bshr, 8)
  | "+" -> Some (Badd, 9)
  | "-" -> Some (Bsub, 9)
  | "*" -> Some (Bmul, 10)
  | "/" -> Some (Bdiv, 10)
  | "%" -> Some (Brem, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).Lexer.tok with
    | Lexer.Tpunct p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        let pos = (peek st).Lexer.tpos in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := { e = Ebinop (op, !lhs, rhs); epos = pos }
      | Some _ | None -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.Tpunct "-" ->
    advance st;
    { e = Eunop (Uneg, parse_unary st); epos = t.Lexer.tpos }
  | Lexer.Tpunct "!" ->
    advance st;
    { e = Eunop (Unot, parse_unary st); epos = t.Lexer.tpos }
  | Lexer.Tpunct "(" when is_cast st -> (
    advance st;
    let ty = parse_ty st in
    expect_punct st ")";
    { e = Ecast (ty, parse_unary st); epos = t.Lexer.tpos })
  | _ -> parse_postfix st

(* lookahead: "(" followed by a type keyword is a cast *)
and is_cast st =
  match st.toks with
  | { Lexer.tok = Lexer.Tpunct "("; _ }
    :: { Lexer.tok = Lexer.Tkw ("int" | "float" | "char" | "void"); _ }
    :: _ ->
    true
  | _ -> false

and parse_postfix st =
  let base = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let t = peek st in
    match t.Lexer.tok with
    | Lexer.Tpunct "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      base := { e = Eindex (!base, idx); epos = t.Lexer.tpos }
    | _ -> continue_ := false
  done;
  !base

and parse_primary st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tint_lit n -> { e = Eint n; epos = t.Lexer.tpos }
  | Lexer.Tfloat_lit f -> { e = Efloat f; epos = t.Lexer.tpos }
  | Lexer.Tstring_lit s -> { e = Estr s; epos = t.Lexer.tpos }
  | Lexer.Tident x ->
    if accept_punct st "(" then begin
      let args = parse_args st in
      { e = Ecall (x, args); epos = t.Lexer.tpos }
    end
    else { e = Evar x; epos = t.Lexer.tpos }
  | Lexer.Tpunct "(" ->
    let e = parse_expr st in
    expect_punct st ")";
    e
  | tok ->
    err t.Lexer.tpos "expected an expression, found %s"
      (Lexer.token_to_string tok)

and parse_args st =
  if accept_punct st ")" then []
  else
    let rec more acc =
      let acc = parse_expr st :: acc in
      if accept_punct st "," then more acc
      else begin
        expect_punct st ")";
        List.rev acc
      end
    in
    more []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st =
  let t = peek st in
  let pos = t.Lexer.tpos in
  match t.Lexer.tok with
  | Lexer.Tkw ("int" | "float" | "char") ->
    let ty = parse_ty st in
    let name = expect_ident st in
    let init = if accept_punct st "=" then Some (parse_expr st) else None in
    expect_punct st ";";
    { s = Sdecl (ty, name, init); spos = pos }
  | Lexer.Tkw "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let thn = parse_block_or_stmt st in
    let els = if accept_kw st "else" then parse_block_or_stmt st else [] in
    { s = Sif (cond, thn, els); spos = pos }
  | Lexer.Tkw "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let body = parse_block_or_stmt st in
    { s = Swhile (cond, body); spos = pos }
  | Lexer.Tkw "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let s = parse_simple_stmt st in
        expect_punct st ";";
        Some s
      end
    in
    let cond = if accept_punct st ";" then None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Some e
      end
    in
    let inc =
      if accept_punct st ")" then None
      else begin
        let s = parse_simple_stmt st in
        expect_punct st ")";
        Some s
      end
    in
    let body = parse_block_or_stmt st in
    { s = Sfor (init, cond, inc, body); spos = pos }
  | Lexer.Tkw "return" ->
    advance st;
    let e = if accept_punct st ";" then None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Some e
      end
    in
    { s = Sreturn e; spos = pos }
  | Lexer.Tkw "break" ->
    advance st;
    expect_punct st ";";
    { s = Sbreak; spos = pos }
  | Lexer.Tkw "continue" ->
    advance st;
    expect_punct st ";";
    { s = Scontinue; spos = pos }
  | _ ->
    let s = parse_simple_stmt st in
    expect_punct st ";";
    s

(* assignment / index assignment / bare expression (no trailing ';') *)
and parse_simple_stmt st =
  let pos = (peek st).Lexer.tpos in
  match st.toks with
  | { Lexer.tok = Lexer.Tkw ("int" | "float" | "char"); _ } :: _ ->
    let ty = parse_ty st in
    let name = expect_ident st in
    let init = if accept_punct st "=" then Some (parse_expr st) else None in
    { s = Sdecl (ty, name, init); spos = pos }
  | { Lexer.tok = Lexer.Tident x; _ } :: { Lexer.tok = Lexer.Tpunct "="; _ }
    :: _ ->
    advance st;
    advance st;
    { s = Sassign (x, parse_expr st); spos = pos }
  | _ -> (
    let e = parse_expr st in
    if accept_punct st "=" then
      match e.e with
      | Eindex (base, idx) ->
        { s = Sindex_assign (base, idx, parse_expr st); spos = pos }
      | _ -> err pos "invalid assignment target"
    else { s = Sexpr e; spos = pos })

and parse_block_or_stmt st =
  if accept_punct st "{" then begin
    let rec stmts acc =
      if accept_punct st "}" then List.rev acc
      else stmts (parse_stmt st :: acc)
    in
    stmts []
  end
  else [ parse_stmt st ]

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_fundecl st =
  let pos = (peek st).Lexer.tpos in
  let ret = parse_ty st in
  let name = expect_ident st in
  expect_punct st "(";
  let params =
    if accept_punct st ")" then []
    else
      let rec more acc =
        let ty = parse_ty st in
        let pname = expect_ident st in
        let acc = (ty, pname) :: acc in
        if accept_punct st "," then more acc
        else begin
          expect_punct st ")";
          List.rev acc
        end
      in
      more []
  in
  expect_punct st "{";
  let rec stmts acc =
    if accept_punct st "}" then List.rev acc else stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  { fd_name = name; fd_ret = ret; fd_params = params; fd_body = body;
    fd_pos = pos }

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let rec funs acc =
    match (peek st).Lexer.tok with
    | Lexer.Teof -> List.rev acc
    | _ ->
      if is_ty_start st then funs (parse_fundecl st :: acc)
      else
        let t = peek st in
        err t.Lexer.tpos "expected a function definition, found %s"
          (Lexer.token_to_string t.Lexer.tok)
  in
  funs []
