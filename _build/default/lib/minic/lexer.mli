(** Mini-C lexer: hand-written, line/column tracked, both C comment
    styles, escaped string literals. *)

exception Lex_error of string

type token =
  | Tident of string
  | Tint_lit of int
  | Tfloat_lit of float
  | Tstring_lit of string
  | Tkw of string
  | Tpunct of string
  | Teof

type lexed = { tok : token; tpos : Ast.pos }

val tokenize : string -> lexed list
(** @raise Lex_error with a positioned message. *)

val token_to_string : token -> string
