(* Mini-C lexer: hand-written, tracking line/column for error messages.
   Supports both C comment styles and the usual escapes in string
   literals. *)

exception Lex_error of string

type token =
  | Tident of string
  | Tint_lit of int
  | Tfloat_lit of float
  | Tstring_lit of string
  | Tkw of string (* int float void char if else while for return etc. *)
  | Tpunct of string (* ( ) { } [ ] ; , operators *)
  | Teof

type lexed = { tok : token; tpos : Ast.pos }

let keywords =
  [ "int"; "float"; "void"; "char"; "if"; "else"; "while"; "for"; "return";
    "break"; "continue" ]

let punct2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>" ]

let punct1 = "+-*/%<>=!&|^(){}[];,"

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let err msg =
    raise (Lex_error (Printf.sprintf "%d:%d: %s" !line !col msg))
  in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let emit tok tpos = toks := { tok; tpos } :: !toks in
  while !i < n do
    let c = src.[!i] in
    let pos = { Ast.line = !line; col = !col } in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then err "unterminated comment"
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        &&
        let c = src.[!i] in
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (Tkw word) pos
      else emit (Tident word) pos
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        advance ()
      done;
      if
        !i < n
        && (src.[!i] = '.'
           || src.[!i] = 'e'
           || src.[!i] = 'E')
      then begin
        if !i < n && src.[!i] = '.' then begin
          advance ();
          while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
            advance ()
          done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          advance ();
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance ();
          while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
            advance ()
          done
        end;
        let text = String.sub src start (!i - start) in
        match float_of_string_opt text with
        | Some f -> emit (Tfloat_lit f) pos
        | None -> err ("bad float literal " ^ text)
      end
      else
        let text = String.sub src start (!i - start) in
        match int_of_string_opt text with
        | Some k -> emit (Tint_lit k) pos
        | None -> err ("bad integer literal " ^ text)
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then begin
          advance ();
          closed := true
        end
        else if c = '\\' && !i + 1 < n then begin
          advance ();
          (match src.[!i] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | '0' -> Buffer.add_char buf '\000'
          | c -> err (Printf.sprintf "bad escape \\%c" c));
          advance ()
        end
        else begin
          Buffer.add_char buf c;
          advance ()
        end
      done;
      if not !closed then err "unterminated string literal";
      emit (Tstring_lit (Buffer.contents buf)) pos
    end
    else begin
      (* punctuation: prefer two-character operators *)
      let two =
        if !i + 1 < n then String.sub src !i 2 else ""
      in
      if List.mem two punct2 then begin
        advance ();
        advance ();
        emit (Tpunct two) pos
      end
      else if String.contains punct1 c then begin
        advance ();
        emit (Tpunct (String.make 1 c)) pos
      end
      else err (Printf.sprintf "unexpected character %C" c)
    end
  done;
  List.rev ({ tok = Teof; tpos = { Ast.line = !line; col = !col } } :: !toks)

let token_to_string = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tint_lit n -> Printf.sprintf "integer %d" n
  | Tfloat_lit f -> Printf.sprintf "float %g" f
  | Tstring_lit s -> Printf.sprintf "string %S" s
  | Tkw s -> Printf.sprintf "keyword %S" s
  | Tpunct s -> Printf.sprintf "%S" s
  | Teof -> "end of input"
