(* Mini-C -> FIR lowering.

   This is the transformation the paper describes for MCC front-ends
   (Section 3): "function calls in the source language are converted to
   tail-calls using continuation passing style; loops are expressed with
   recursive functions".  Concretely:

   - every mutable C local (and parameter, and compiler temporary) becomes
     a one-cell heap block; reads and writes are checked loads and stores.
     Nothing lives in FIR variables across a control transfer, which is
     precisely what makes whole-process state capture trivial;

   - a C function [R f(T a)] becomes the FIR function
       f(k : (any ptr, R') -> ., kenv : any ptr, a : T')
     where [k]/[kenv] are the closure-converted return continuation
     (code + environment, the environment being an array of [any]);

   - control-flow joins (after an if, loop back-edges, code following a
     call / speculate() / commit() / migrate()) become fresh internal FIR
     functions taking (k, kenv, frame cells...);

   - speculate()/commit(id)/abort(id)/migrate(target) lower to the FIR
     pseudo-instructions, with the rest of the C function as the
     continuation — the compiler generates all the state-management code,
     "removing the need for the user to implement hand-written
     checkpointing code" (paper, Section 1).

   C speculate() returns +level when a speculation is entered and -level
   when execution re-enters it after an abort (the retry), so Figure 1's
   `if ((specid = speculate()) > 0)` pattern works unchanged. *)

open Ast
open Typecheck
module F = Fir.Ast
module T = Fir.Types
module B = Fir.Builder

exception Error of string

let rec lower_ty = function
  | Cint -> T.Tint
  | Cfloat -> T.Tfloat
  | Cvoid -> T.Tint (* void functions return a dummy 0 *)
  | Cptr t -> T.Tptr (lower_ty t)
  | Cstr -> T.Traw

let default_atom = function
  | Cint | Cvoid -> F.Int 0
  | Cfloat -> F.Float 0.0
  | Cptr t -> F.Nil (T.Tptr (lower_ty t))
  | Cstr -> F.Nil T.Traw

(* C [main] collides with the FIR entry point, which takes no parameters;
   every other function keeps its own name. *)
let fir_name = function "main" -> "c$main" | n -> n

type state = {
  mutable fns : F.fundef list;
  mutable counter : int;
  labels : int ref; (* program-wide migration label counter *)
  cur_name : string;
  cur_ret : cty;
  frame : (string * cty) list; (* params then locals, in order *)
}

type env = {
  k : F.atom;
  kenv : F.atom;
  cells : (string * F.atom) list; (* frame order *)
}

type loop_ctx = {
  break_ : (env -> F.exp) option;
  continue_ : (env -> F.exp) option;
}

let no_loop = { break_ = None; continue_ = None }

(* The type of the current function's return continuation. *)
let cont_ty state = T.Tfun [ T.Tptr T.Tany; lower_ty state.cur_ret ]

let cell env x =
  match List.assoc_opt x env.cells with
  | Some a -> a
  | None -> raise (Error ("internal: no cell for " ^ x))

let cell_ty state x =
  match List.assoc_opt x state.frame with
  | Some ty -> ty
  | None -> raise (Error ("internal: no frame slot for " ^ x))

(* ------------------------------------------------------------------ *)
(* Internal continuation functions                                     *)
(* ------------------------------------------------------------------ *)

let internal_params state =
  ("k", cont_ty state)
  :: ("kenv", T.Tptr T.Tany)
  :: List.map (fun (x, ty) -> x, T.Tptr (lower_ty ty)) state.frame

let fresh_name state =
  state.counter <- state.counter + 1;
  Printf.sprintf "%s$%d" (fir_name state.cur_name) state.counter

(* Create an internal function [extras..., k, kenv, cells...] and return
   its name.  [gen] receives the rebuilt env and the extra atoms. *)
let make_internal state ?(extras = []) gen =
  let name = fresh_name state in
  let fd =
    B.func name
      (extras @ internal_params state)
      (fun atoms ->
        let rec split n l =
          if n = 0 then [], l
          else
            match l with
            | x :: rest ->
              let a, b = split (n - 1) rest in
              x :: a, b
            | [] -> raise (Error "internal: arity")
        in
        let extra_atoms, rest = split (List.length extras) atoms in
        match rest with
        | k :: kenv :: cell_atoms ->
          let env =
            { k; kenv;
              cells = List.map2 (fun (x, _) a -> x, a) state.frame cell_atoms }
          in
          gen env extra_atoms
        | _ -> raise (Error "internal: missing k/kenv"))
  in
  state.fns <- fd :: state.fns;
  name

let call_internal name env =
  F.Call (F.Fun name, env.k :: env.kenv :: List.map snd env.cells)

(* ------------------------------------------------------------------ *)
(* Values that survive continuation splits                             *)
(* ------------------------------------------------------------------ *)

type value_ref =
  | Direct of F.atom
  | In_cell of string * T.ty

let fetch env vr (k : F.atom -> F.exp) =
  match vr with
  | Direct a -> k a
  | In_cell (tmp, ty) -> B.load ty (cell env tmp) (B.int 0) k

(* After computing [atom] for [te], spill it into its temporary (if the
   typechecker assigned one) and continue. *)
let produce env (te : texpr) atom (k : env -> value_ref -> F.exp) =
  match te.ttemp with
  | None -> k env (Direct atom)
  | Some tmp ->
    F.Store (cell env tmp, F.Int 0, atom,
             k env (In_cell (tmp, lower_ty te.tty)))

let fetch_all env refs (k : F.atom list -> F.exp) =
  let rec go acc = function
    | [] -> k (List.rev acc)
    | vr :: rest -> fetch env vr (fun a -> go (a :: acc) rest)
  in
  go [] refs

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* int 0/1 from a bool atom *)
let bool_to_int b k = B.unop T.Tint F.Int_of_bool b k

(* truthiness: int atom -> bool atom *)
let truthy a k = B.ne a (F.Int 0) k

let rec lower_expr state ctx env (te : texpr)
    (k : env -> value_ref -> F.exp) : F.exp =
  match te.td with
  | Tint_lit n -> produce env te (F.Int n) k
  | Tfloat_lit f -> produce env te (F.Float f) k
  | Tstr_lit s -> B.string s (fun a -> produce env te a k)
  | Tvar x ->
    B.load (lower_ty te.tty) (cell env x) (B.int 0) (fun a ->
        produce env te a k)
  | Tindex (base, idx) ->
    lower_expr state ctx env base (fun env rb ->
        lower_expr state ctx env idx (fun env ri ->
            fetch env rb (fun vb ->
                fetch env ri (fun vi ->
                    B.load (lower_ty te.tty) vb vi (fun a ->
                        produce env te a k)))))
  | Tunop (op, a) ->
    lower_expr state ctx env a (fun env ra ->
        fetch env ra (fun va ->
            let cont x = produce env te x k in
            match op, a.tty with
            | Uneg, Cint -> B.unop T.Tint F.Neg va (fun x -> cont x)
            | Uneg, Cfloat -> B.unop T.Tfloat F.Fneg va (fun x -> cont x)
            | Unot, _ ->
              B.eq va (F.Int 0) (fun b -> bool_to_int b (fun x -> cont x))
            | Uneg, _ -> raise (Error "internal: bad unop type")))
  | Tbinop (op, a, b) ->
    lower_expr state ctx env a (fun env ra ->
        lower_expr state ctx env b (fun env rb ->
            fetch env ra (fun va ->
                fetch env rb (fun vb ->
                    lower_binop state env te op a b va vb k))))
  | Tcast (ty, a) ->
    lower_expr state ctx env a (fun env ra ->
        fetch env ra (fun va ->
            match ty, a.tty with
            | Cint, Cfloat ->
              B.unop T.Tint F.Int_of_float va (fun x -> produce env te x k)
            | Cfloat, Cint ->
              B.unop T.Tfloat F.Float_of_int va (fun x -> produce env te x k)
            | _ -> produce env te va k))
  | Tcall_builtin (kind, args) -> lower_builtin state ctx env te kind args k
  | Tcall_user (g, args) ->
    lower_expr_list state ctx env args (fun env refs ->
        fetch_all env refs (fun arg_atoms ->
            let g_fir = fir_name g in
            let ncells = List.length state.frame in
            (* the receive continuation: unpack the closure environment,
               then resume with the returned value *)
            let recv =
              let name = fresh_name state in
              let fd =
                B.func name
                  [ "env", T.Tptr T.Tany; "r", lower_ty te.tty ]
                  (fun atoms ->
                    match atoms with
                    | [ envp; r ] ->
                      B.load T.Tany envp (B.int 0) (fun k_any ->
                          B.cast (cont_ty state) k_any (fun k_val ->
                              B.load T.Tany envp (B.int 1) (fun kenv_any ->
                                  B.cast (T.Tptr T.Tany) kenv_any
                                    (fun kenv_val ->
                                      let rec unpack i acc = function
                                        | [] ->
                                          let env' =
                                            {
                                              k = k_val;
                                              kenv = kenv_val;
                                              cells = List.rev acc;
                                            }
                                          in
                                          produce env' te r k
                                        | (x, ty) :: rest ->
                                          B.load T.Tany envp (B.int (2 + i))
                                            (fun c_any ->
                                              B.cast
                                                (T.Tptr (lower_ty ty))
                                                c_any
                                                (fun c ->
                                                  unpack (i + 1)
                                                    ((x, c) :: acc)
                                                    rest))
                                      in
                                      unpack 0 [] state.frame))))
                    | _ -> raise (Error "internal: recv arity"))
              in
              state.fns <- fd :: state.fns;
              name
            in
            (* pack the closure environment *)
            B.array T.Tany ~size:(B.int (2 + ncells)) ~init:F.Unit
              (fun envarr ->
                F.Store
                  ( envarr, F.Int 0, env.k,
                    F.Store
                      ( envarr, F.Int 1, env.kenv,
                        let rec pack i = function
                          | [] ->
                            F.Call
                              (F.Fun g_fir,
                               F.Fun recv :: envarr :: arg_atoms)
                          | (_, c) :: rest ->
                            F.Store (envarr, F.Int (2 + i), c, pack (i + 1) rest)
                        in
                        pack 0 env.cells )))))

and lower_binop state env te op a b va vb k =
  let cont x = produce env te x k in
  let int2 fop = B.binop T.Tint fop va vb (fun x -> cont x) in
  let float2 fop = B.binop T.Tfloat fop va vb (fun x -> cont x) in
  let cmp fop = B.binop T.Tbool fop va vb (fun c -> bool_to_int c cont) in
  ignore state;
  match op, a.tty, b.tty with
  | Badd, Cint, _ -> int2 F.Add
  | Bsub, Cint, _ -> int2 F.Sub
  | Bmul, Cint, _ -> int2 F.Mul
  | Bdiv, Cint, _ -> int2 F.Div
  | Brem, _, _ -> int2 F.Rem
  | Band, _, _ -> int2 F.Band
  | Bor, _, _ -> int2 F.Bor
  | Bxor, _, _ -> int2 F.Bxor
  | Bshl, _, _ -> int2 F.Shl
  | Bshr, _, _ -> int2 F.Shr
  | Badd, Cfloat, _ -> float2 F.Fadd
  | Bsub, Cfloat, _ -> float2 F.Fsub
  | Bmul, Cfloat, _ -> float2 F.Fmul
  | Bdiv, Cfloat, _ -> float2 F.Fdiv
  | Badd, (Cptr _ | Cstr), _ ->
    B.binop (lower_ty a.tty) F.Padd va vb (fun x -> cont x)
  | Bsub, Cptr _, _ ->
    B.unop T.Tint F.Neg vb (fun nvb ->
        B.binop (lower_ty a.tty) F.Padd va nvb (fun x -> cont x))
  | Beq, Cint, _ -> cmp F.Eq
  | Bne, Cint, _ -> cmp F.Ne
  | Blt, Cint, _ -> cmp F.Lt
  | Ble, Cint, _ -> cmp F.Le
  | Bgt, Cint, _ -> cmp F.Gt
  | Bge, Cint, _ -> cmp F.Ge
  | Beq, Cfloat, _ -> cmp F.Feq
  | Bne, Cfloat, _ -> cmp F.Fne
  | Blt, Cfloat, _ -> cmp F.Flt
  | Ble, Cfloat, _ -> cmp F.Fle
  | Bgt, Cfloat, _ -> cmp F.Fgt
  | Bge, Cfloat, _ -> cmp F.Fge
  | Beq, (Cptr _ | Cstr), _ ->
    B.binop T.Tbool F.Peq va vb (fun c -> bool_to_int c cont)
  | Bne, (Cptr _ | Cstr), _ ->
    B.binop T.Tbool F.Peq va vb (fun c ->
        B.unop T.Tbool F.Not c (fun nc -> bool_to_int nc cont))
  | Bland, _, _ ->
    truthy va (fun ba ->
        truthy vb (fun bb ->
            B.binop T.Tbool F.And ba bb (fun c -> bool_to_int c cont)))
  | Blor, _, _ ->
    truthy va (fun ba ->
        truthy vb (fun bb ->
            B.binop T.Tbool F.Or ba bb (fun c -> bool_to_int c cont)))
  | (Badd | Bsub | Bmul | Bdiv | Beq | Bne | Blt | Ble | Bgt | Bge), _, _ ->
    raise (Error "internal: binop type mix")

and lower_expr_list state ctx env tes
    (k : env -> value_ref list -> F.exp) : F.exp =
  let rec go env acc = function
    | [] -> k env (List.rev acc)
    | te :: rest ->
      lower_expr state ctx env te (fun env r -> go env (r :: acc) rest)
  in
  go env [] tes

and lower_builtin state ctx env te kind args k =
  match kind with
  | Bext name ->
    lower_expr_list state ctx env args (fun env refs ->
        fetch_all env refs (fun atoms ->
            let ret_ty =
              match te.tty with Cvoid -> T.Tunit | t -> lower_ty t
            in
            B.ext ret_ty name atoms (fun r ->
                match te.tty with
                | Cvoid -> produce env te (F.Int 0) k
                | _ -> produce env te r k)))
  | Balloc elt ->
    lower_expr_list state ctx env args (fun env refs ->
        fetch_all env refs (fun atoms ->
            match atoms with
            | [ n ] ->
              B.array (lower_ty elt) ~size:n ~init:(default_atom elt)
                (fun a -> produce env te a k)
            | _ -> raise (Error "internal: alloc arity")))
  | Bspeculate ->
    (* speculate f(c, k, kenv, cells...): f computes the C-level return
       value (+level fresh, -level on re-entry after abort) *)
    let body =
      make_internal state ~extras:[ "c", T.Tint ] (fun env extras ->
          match extras with
          | [ c ] ->
            B.ext T.Tint "spec_level" [] (fun lvl ->
                B.eq c (F.Int 0) (fun fresh ->
                    bool_to_int fresh (fun bi ->
                        B.mul (F.Int 2) bi (fun twob ->
                            B.sub twob (F.Int 1) (fun sign ->
                                B.mul sign lvl (fun specid ->
                                    produce env te specid k))))))
          | _ -> raise (Error "internal: speculate extras"))
    in
    F.Speculate (F.Fun body, env.k :: env.kenv :: List.map snd env.cells)
  | Bcommit ->
    lower_expr_list state ctx env args (fun env refs ->
        fetch_all env refs (fun atoms ->
            match atoms with
            | [ level ] ->
              let cont =
                make_internal state (fun env _ ->
                    produce env te (F.Int 0) k)
              in
              F.Commit
                (level, F.Fun cont,
                 env.k :: env.kenv :: List.map snd env.cells)
            | _ -> raise (Error "internal: commit arity")))
  | Babort ->
    (* terminal: control resumes at the speculation entry *)
    lower_expr_list state ctx env args (fun env refs ->
        fetch_all env refs (fun atoms ->
            match atoms with
            | [ level ] -> F.Rollback (level, F.Int 1)
            | _ -> raise (Error "internal: abort arity")))
  | Bmigrate ->
    lower_expr_list state ctx env args (fun env refs ->
        fetch_all env refs (fun atoms ->
            match atoms with
            | [ dst ] ->
              let cont =
                make_internal state (fun env _ ->
                    produce env te (F.Int 0) k)
              in
              incr state.labels;
              F.Migrate
                (!(state.labels), dst, F.Fun cont,
                 env.k :: env.kenv :: List.map snd env.cells)
            | _ -> raise (Error "internal: migrate arity")))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt state ctx env (s : tstmt) (after : env -> F.exp) : F.exp =
  match s with
  | TSassign (x, te) ->
    lower_expr state ctx env te (fun env r ->
        fetch env r (fun v -> F.Store (cell env x, F.Int 0, v, after env)))
  | TSindex_assign (base, idx, value) ->
    lower_expr state ctx env base (fun env rb ->
        lower_expr state ctx env idx (fun env ri ->
            lower_expr state ctx env value (fun env rv ->
                fetch env rb (fun vb ->
                    fetch env ri (fun vi ->
                        fetch env rv (fun vv ->
                            F.Store (vb, vi, vv, after env)))))))
  | TSif (c, thn, els) ->
    let join = make_internal state (fun env _ -> after env) in
    let goto_join env = call_internal join env in
    lower_expr state ctx env c (fun env rc ->
        fetch env rc (fun vc ->
            truthy vc (fun cond ->
                F.If
                  ( cond,
                    lower_stmts state ctx env thn goto_join,
                    lower_stmts state ctx env els goto_join ))))
  | TSwhile (c, body) ->
    let join = make_internal state (fun env _ -> after env) in
    let loop_name = fresh_name state in
    let loop_ctx =
      {
        break_ = Some (fun env -> call_internal join env);
        continue_ = Some (fun env -> call_internal loop_name env);
      }
    in
    let fd =
      B.func loop_name (internal_params state) (fun atoms ->
          match atoms with
          | k :: kenv :: cell_atoms ->
            let env =
              { k; kenv;
                cells =
                  List.map2 (fun (x, _) a -> x, a) state.frame cell_atoms }
            in
            lower_expr state ctx env c (fun env rc ->
                fetch env rc (fun vc ->
                    truthy vc (fun cond ->
                        F.If
                          ( cond,
                            lower_stmts state loop_ctx env body (fun env ->
                                call_internal loop_name env),
                            call_internal join env ))))
          | _ -> raise (Error "internal: loop params"))
    in
    state.fns <- fd :: state.fns;
    call_internal loop_name env
  | TSfor_loop (init, cond, inc, body) ->
    let join = make_internal state (fun env _ -> after env) in
    let loop_name = fresh_name state in
    let do_inc env =
      match inc with
      | None -> call_internal loop_name env
      | Some s ->
        lower_stmt state ctx env s (fun env -> call_internal loop_name env)
    in
    let loop_ctx =
      {
        break_ = Some (fun env -> call_internal join env);
        continue_ = Some do_inc;
      }
    in
    let fd =
      B.func loop_name (internal_params state) (fun atoms ->
          match atoms with
          | k :: kenv :: cell_atoms ->
            let env =
              { k; kenv;
                cells =
                  List.map2 (fun (x, _) a -> x, a) state.frame cell_atoms }
            in
            let run_body env =
              lower_stmts state loop_ctx env body do_inc
            in
            (match cond with
            | None -> run_body env
            | Some c ->
              lower_expr state ctx env c (fun env rc ->
                  fetch env rc (fun vc ->
                      truthy vc (fun cd ->
                          F.If (cd, run_body env, call_internal join env)))))
          | _ -> raise (Error "internal: loop params"))
    in
    state.fns <- fd :: state.fns;
    (match init with
    | None -> call_internal loop_name env
    | Some s ->
      lower_stmt state ctx env s (fun env -> call_internal loop_name env))
  | TSreturn None -> F.Call (env.k, [ env.kenv; F.Int 0 ])
  | TSreturn (Some te) ->
    lower_expr state ctx env te (fun env r ->
        fetch env r (fun v -> F.Call (env.k, [ env.kenv; v ])))
  | TSexpr te -> lower_expr state ctx env te (fun env _ -> after env)
  | TSbreak -> (
    match ctx.break_ with
    | Some f -> f env
    | None -> raise (Error "internal: break outside loop"))
  | TScontinue -> (
    match ctx.continue_ with
    | Some f -> f env
    | None -> raise (Error "internal: continue outside loop"))

and lower_stmts state ctx env stmts (after : env -> F.exp) : F.exp =
  match stmts with
  | [] -> after env
  | s :: rest ->
    lower_stmt state ctx env s (fun env -> lower_stmts state ctx env rest after)

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let lower_fun labels (tf : tfun) : F.fundef list =
  let frame =
    List.map (fun (ty, x) -> x, ty) tf.tf_params
    @ List.map (fun (ty, x) -> x, ty) tf.tf_locals
  in
  let state =
    {
      fns = [];
      counter = 0;
      labels;
      cur_name = tf.tf_name;
      cur_ret = tf.tf_ret;
      frame;
    }
  in
  let params =
    ("k", cont_ty state)
    :: ("kenv", T.Tptr T.Tany)
    :: List.map (fun (ty, x) -> x, lower_ty ty) tf.tf_params
  in
  let implicit_return env = F.Call (env.k, [ env.kenv; default_atom tf.tf_ret ]) in
  let fd =
    B.func (fir_name tf.tf_name) params (fun atoms ->
        match atoms with
        | k :: kenv :: param_atoms ->
          (* allocate one heap cell per frame slot: parameters are
             initialized from their argument values, locals from their
             type's default *)
          let rec alloc_cells frame param_atoms acc =
            match frame, param_atoms with
            | [], _ ->
              let env = { k; kenv; cells = List.rev acc } in
              lower_stmts state no_loop env tf.tf_body implicit_return
            | (x, ty) :: frest, p :: prest
              when List.exists (fun (_, px) -> String.equal px x) tf.tf_params
              ->
              B.array (lower_ty ty) ~size:(B.int 1) ~init:p (fun c ->
                  alloc_cells frest prest ((x, c) :: acc))
            | (x, ty) :: frest, ps ->
              B.array (lower_ty ty) ~size:(B.int 1)
                ~init:(default_atom ty) (fun c ->
                  alloc_cells frest ps ((x, c) :: acc))
          in
          alloc_cells frame param_atoms []
        | _ -> raise (Error "internal: function params"))
  in
  fd :: state.fns

let lower_program (tp : tprogram) : F.program =
  let labels = ref 0 in
  let fns = List.concat_map (lower_fun labels) tp.tp_funs in
  (* entry point and exit continuation *)
  let exit_fn =
    B.func "$exit"
      [ "env", T.Tptr T.Tany; "r", T.Tint ]
      (fun atoms ->
        match atoms with
        | [ _; r ] -> F.Exit r
        | _ -> raise (Error "internal: exit arity"))
  in
  let main_fn =
    B.func "main" [] (fun _ ->
        B.atom (T.Tptr T.Tany) (F.Nil (T.Tptr T.Tany)) (fun nil_env ->
            F.Call (F.Fun "c$main", [ F.Fun "$exit"; nil_env ])))
  in
  F.program (main_fn :: exit_fn :: fns) ~main:"main"
