(** The mini-C compiler driver: source text -> verified, optimized FIR.

    Mini-C is the paper's surface language for Figures 1 and 2:
    int/float/void and pointers, C control flow, and the MCC primitives
    [speculate()], [commit(id)], [abort(id)], [migrate(target)] as
    builtins (see {!Typecheck.builtins} for the full registry).  The
    lowering is the CPS conversion the paper describes in Section 3 —
    loops become recursive functions, calls become tail calls with
    closure-converted return continuations, and every local lives in a
    heap cell so whole-process capture is automatic. *)

type error = {
  err_phase : [ `Lex | `Parse | `Type | `Lower | `Fir ];
  err_msg : string;
}

val error_to_string : error -> string

val compile : ?optimize:bool -> string -> (Fir.Ast.program, error) result
(** Lex, parse, typecheck, lower, verify the generated FIR, and
    (by default) optimize — re-verifying after optimization. *)

val compile_ast :
  ?optimize:bool -> Ast.program -> (Fir.Ast.program, error) result
(** Compile an already-built mini-C AST (used by translating front-ends
    such as the Pascal one). *)

val compile_exn : ?optimize:bool -> string -> Fir.Ast.program
(** @raise Failure with the rendered error. *)
