lib/minic/ast.ml:
