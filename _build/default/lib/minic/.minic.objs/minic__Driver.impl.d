lib/minic/driver.ml: Ast Fir Lexer Lower Parser Printf String Typecheck
