lib/minic/lexer.ml: Ast Buffer List Printf String
