lib/minic/driver.mli: Ast Fir
