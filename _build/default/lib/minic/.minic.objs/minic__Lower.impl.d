lib/minic/lower.ml: Ast Fir List Printf String Typecheck
