lib/minic/ast.mli:
