(* The mini-C compiler driver: source text -> verified, optimized FIR. *)

type error = {
  err_phase : [ `Lex | `Parse | `Type | `Lower | `Fir ];
  err_msg : string;
}

let error_to_string e =
  let phase =
    match e.err_phase with
    | `Lex -> "lexical error"
    | `Parse -> "syntax error"
    | `Type -> "type error"
    | `Lower -> "lowering error"
    | `Fir -> "internal FIR error"
  in
  Printf.sprintf "%s: %s" phase e.err_msg

(* Compile from an already-built mini-C AST (used by front-ends that
   translate into mini-C, e.g. the Pascal one). *)
let compile_ast ?(optimize = true) (ast : Ast.program) =
  match
    let tast =
      try Typecheck.check_program ast
      with Typecheck.Error m -> raise (Failure ("T" ^ m))
    in
    let fir =
      try Lower.lower_program tast
      with Lower.Error m -> raise (Failure ("W" ^ m))
    in
    (match Fir.Typecheck.check_program fir with
    | Ok () -> ()
    | Error m -> raise (Failure ("F" ^ m)));
    let fir = if optimize then Fir.Opt.optimize fir else fir in
    (match Fir.Typecheck.check_program fir with
    | Ok () -> ()
    | Error m -> raise (Failure ("F(post-opt) " ^ m)));
    fir
  with
  | fir -> Ok fir
  | exception Failure m ->
    let phase, msg =
      match m.[0] with
      | 'T' -> `Type, String.sub m 1 (String.length m - 1)
      | 'W' -> `Lower, String.sub m 1 (String.length m - 1)
      | _ -> `Fir, String.sub m 1 (String.length m - 1)
    in
    Error { err_phase = phase; err_msg = msg }

let compile ?(optimize = true) src =
  match
    let ast =
      try Parser.parse_program src with
      | Lexer.Lex_error m -> raise (Failure ("L" ^ m))
      | Parser.Parse_error m -> raise (Failure ("P" ^ m))
    in
    let tast =
      try Typecheck.check_program ast
      with Typecheck.Error m -> raise (Failure ("T" ^ m))
    in
    let fir =
      try Lower.lower_program tast
      with Lower.Error m -> raise (Failure ("W" ^ m))
    in
    (* the generated FIR must typecheck; a failure here is a compiler bug
       and is reported as such *)
    (match Fir.Typecheck.check_program fir with
    | Ok () -> ()
    | Error m -> raise (Failure ("F" ^ m)));
    let fir = if optimize then Fir.Opt.optimize fir else fir in
    (match Fir.Typecheck.check_program fir with
    | Ok () -> ()
    | Error m -> raise (Failure ("F(post-opt) " ^ m)));
    fir
  with
  | fir -> Ok fir
  | exception Failure m ->
    let phase, msg =
      match m.[0] with
      | 'L' -> `Lex, String.sub m 1 (String.length m - 1)
      | 'P' -> `Parse, String.sub m 1 (String.length m - 1)
      | 'T' -> `Type, String.sub m 1 (String.length m - 1)
      | 'W' -> `Lower, String.sub m 1 (String.length m - 1)
      | _ -> `Fir, String.sub m 1 (String.length m - 1)
    in
    Error { err_phase = phase; err_msg = msg }

let compile_exn ?optimize src =
  match compile ?optimize src with
  | Ok fir -> fir
  | Error e -> failwith (error_to_string e)
