(** Mini-C abstract syntax — the C subset the paper's Figures 1 and 2 are
    written in, with the MCC primitives as builtins.

    Also the TARGET of translating front-ends: the Pascal front-end
    builds this AST directly and shares the typechecked CPS lowering.

    Documented deviations from ISO C: declarations are function-scoped
    (hoisted) with unique names; [&&]/[||] evaluate both operands; no
    address-of, structs or function pointers; arrays come from
    [alloc_int]/[alloc_float]; comparisons yield 0/1 ints. *)

type cty =
  | Cint
  | Cfloat
  | Cvoid
  | Cptr of cty
  | Cstr  (** char* : raw byte data *)

val cty_to_string : cty -> string
val cty_equal : cty -> cty -> bool

type pos = { line : int; col : int }

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Brem
  | Band
  | Bor
  | Bxor
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Bland  (** && (strict) *)
  | Blor  (** || (strict) *)

type unop = Uneg | Unot

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Eint of int
  | Efloat of float
  | Estr of string
  | Evar of string
  | Eindex of expr * expr
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ecall of string * expr list
  | Ecast of cty * expr

type stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | Sdecl of cty * string * expr option
  | Sassign of string * expr
  | Sindex_assign of expr * expr * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sexpr of expr
  | Sbreak
  | Scontinue

type fundecl = {
  fd_name : string;
  fd_ret : cty;
  fd_params : (cty * string) list;
  fd_body : stmt list;
  fd_pos : pos;
}

type program = fundecl list
