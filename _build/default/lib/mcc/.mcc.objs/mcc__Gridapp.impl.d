lib/mcc/gridapp.ml: Array Buffer List Minic Net Printf Vm
