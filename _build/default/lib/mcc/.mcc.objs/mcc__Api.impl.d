lib/mcc/api.ml: Fir Migrate Minic Miniml Pascal Vm
