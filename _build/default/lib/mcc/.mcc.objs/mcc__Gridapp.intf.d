lib/mcc/gridapp.mli: Fir Net Vm
