lib/mcc/api.mli: Fir Migrate Vm
