lib/spec/engine.mli: Gc Heap Runtime Value
