lib/spec/engine.ml: Gc Hashtbl Heap List Printf Runtime Value
