(* FIR variables.

   Variables are immutable and globally unique by integer id; the name is
   kept only for printing.  Uniqueness is what lets the optimizer substitute
   without capture and the serializer refer to variables by id. *)

type t = { id : int; name : string }

let counter = ref 0

let fresh name =
  incr counter;
  { id = !counter; name }

(* Used by the deserializer to rebuild a variable with a known id.  The
   global counter is bumped past [id] so that subsequently generated fresh
   variables never collide with deserialized ones. *)
let of_id ~id ~name =
  if id > !counter then counter := id;
  { id; name }

let id v = v.id
let name v = v.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash v = v.id
let to_string v = Printf.sprintf "%s_%d" v.name v.id
let pp fmt v = Format.pp_print_string fmt (to_string v)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
