(** Pretty-printer for FIR programs (the CLI's [--fir] output). *)

val unop_to_string : Ast.unop -> string
val binop_to_string : Ast.binop -> string
val pp_atom : Format.formatter -> Ast.atom -> unit
val pp_exp : Format.formatter -> Ast.exp -> unit
val pp_fundef : Format.formatter -> Ast.fundef -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val exp_to_string : Ast.exp -> string
val program_to_string : Ast.program -> string
