(* Pretty-printer for FIR programs. *)

open Ast

let unop_to_string = function
  | Neg -> "neg"
  | Not -> "not"
  | Fneg -> "fneg"
  | Int_of_float -> "int_of_float"
  | Float_of_int -> "float_of_int"
  | Int_of_bool -> "int_of_bool"
  | Int_of_enum -> "int_of_enum"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Fadd -> "+."
  | Fsub -> "-."
  | Fmul -> "*."
  | Fdiv -> "/."
  | Feq -> "==."
  | Fne -> "!=."
  | Flt -> "<."
  | Fle -> "<=."
  | Fgt -> ">."
  | Fge -> ">=."
  | And -> "&&"
  | Or -> "||"
  | Padd -> "p+"
  | Peq -> "p=="

let pp_atom fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Int n -> Format.pp_print_int fmt n
  | Float f -> Format.fprintf fmt "%g" f
  | Bool b -> Format.pp_print_bool fmt b
  | Enum (card, v) -> Format.fprintf fmt "enum[%d]{%d}" card v
  | Var v -> Var.pp fmt v
  | Fun f -> Format.fprintf fmt "@@%s" f
  | Nil t -> Format.fprintf fmt "nil:%a" Types.pp t

let pp_atoms fmt atoms =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_atom fmt atoms

let rec pp_exp fmt = function
  | Let_atom (v, t, a, e) ->
    Format.fprintf fmt "@[<hv>let %a : %a = %a in@ %a@]" Var.pp v Types.pp t
      pp_atom a pp_exp e
  | Let_cast (v, t, a, e) ->
    Format.fprintf fmt "@[<hv>let %a : %a = cast %a in@ %a@]" Var.pp v
      Types.pp t pp_atom a pp_exp e
  | Let_unop (v, t, op, a, e) ->
    Format.fprintf fmt "@[<hv>let %a : %a = %s %a in@ %a@]" Var.pp v Types.pp
      t (unop_to_string op) pp_atom a pp_exp e
  | Let_binop (v, t, op, a, b, e) ->
    Format.fprintf fmt "@[<hv>let %a : %a = %a %s %a in@ %a@]" Var.pp v
      Types.pp t pp_atom a (binop_to_string op) pp_atom b pp_exp e
  | Let_tuple (v, fields, e) ->
    Format.fprintf fmt "@[<hv>let %a = tuple(%a) in@ %a@]" Var.pp v pp_atoms
      (List.map snd fields) pp_exp e
  | Let_array (v, t, size, init, e) ->
    Format.fprintf fmt "@[<hv>let %a = array<%a>[%a](%a) in@ %a@]" Var.pp v
      Types.pp t pp_atom size pp_atom init pp_exp e
  | Let_string (v, s, e) ->
    Format.fprintf fmt "@[<hv>let %a = %S in@ %a@]" Var.pp v s pp_exp e
  | Let_proj (v, t, a, i, e) ->
    Format.fprintf fmt "@[<hv>let %a : %a = %a.%d in@ %a@]" Var.pp v Types.pp
      t pp_atom a i pp_exp e
  | Set_proj (a, i, x, e) ->
    Format.fprintf fmt "@[<hv>%a.%d <- %a;@ %a@]" pp_atom a i pp_atom x pp_exp
      e
  | Let_load (v, t, a, i, e) ->
    Format.fprintf fmt "@[<hv>let %a : %a = %a[%a] in@ %a@]" Var.pp v Types.pp
      t pp_atom a pp_atom i pp_exp e
  | Store (a, i, x, e) ->
    Format.fprintf fmt "@[<hv>%a[%a] <- %a;@ %a@]" pp_atom a pp_atom i pp_atom
      x pp_exp e
  | Let_ext (v, t, name, args, e) ->
    Format.fprintf fmt "@[<hv>let %a : %a = extern %s(%a) in@ %a@]" Var.pp v
      Types.pp t name pp_atoms args pp_exp e
  | If (a, e1, e2) ->
    Format.fprintf fmt "@[<v>if %a then@;<1 2>@[%a@]@ else@;<1 2>@[%a@]@]"
      pp_atom a pp_exp e1 pp_exp e2
  | Switch (a, cases, default) ->
    let pp_case fmt (n, e) =
      Format.fprintf fmt "@[<hv 2>| %d ->@ %a@]" n pp_exp e
    in
    Format.fprintf fmt "@[<v>switch %a@ %a@ @[<hv 2>| _ ->@ %a@]@]" pp_atom a
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_case)
      cases pp_exp default
  | Call (f, args) -> Format.fprintf fmt "@[%a(%a)@]" pp_atom f pp_atoms args
  | Exit a -> Format.fprintf fmt "exit %a" pp_atom a
  | Migrate (i, dst, f, args) ->
    Format.fprintf fmt "@[migrate [%d, %a] %a(%a)@]" i pp_atom dst pp_atom f
      pp_atoms args
  | Speculate (f, args) ->
    Format.fprintf fmt "@[speculate %a(<c>, %a)@]" pp_atom f pp_atoms args
  | Commit (l, f, args) ->
    Format.fprintf fmt "@[commit [%a] %a(%a)@]" pp_atom l pp_atom f pp_atoms
      args
  | Rollback (l, c) ->
    Format.fprintf fmt "@[rollback [%a, %a]@]" pp_atom l pp_atom c

let pp_fundef fmt fd =
  let pp_param fmt (v, t) = Format.fprintf fmt "%a : %a" Var.pp v Types.pp t in
  Format.fprintf fmt "@[<v 2>fun %s(%a) =@ %a@]" fd.f_name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_param)
    fd.f_params pp_exp fd.f_body

let pp_program fmt p =
  Format.fprintf fmt "@[<v>(* main: %s *)@ " p.p_main;
  iter_funs (fun fd -> Format.fprintf fmt "%a@ @ " pp_fundef fd) p;
  Format.fprintf fmt "@]"

let exp_to_string e = Format.asprintf "%a" pp_exp e
let program_to_string p = Format.asprintf "%a" pp_program p
