(* The FIR abstract syntax.

   The FIR is in continuation-passing style: every function ends in a tail
   call, a process exit, or one of the migration / speculation
   pseudo-instructions (paper, Sections 4.2.1 and 4.3.1).  Loops from the
   source languages are expressed with recursive functions.

   Pseudo-instructions:
   - [Migrate (i, dst, f, args)] is the paper's
       migrate [i, aptr, aoff] f(a1, ..., an)
     [i] is the unique resume label; [dst] is a pointer to a raw block
     holding the target string ("mcc://host", "suspend://file",
     "checkpoint://file"); [f] is the continuation.  Our pointers carry
     their offset internally, so (aptr, aoff) is the single atom [dst].
   - [Speculate (f, args)] is speculate f(c, a1, ..., an): enters a new
     speculation level and calls [f] with a fresh rollback code [c = 0]
     prepended to [args].  On rollback the runtime re-calls [f] with the
     same [args] but the rollback code supplied to [Rollback].
   - [Commit (l, f, args)] folds level [l] into its parent and continues
     with [f args].
   - [Rollback (l, c)] restores the state captured when level [l] was
     entered and re-enters it, passing [c] as the new first argument. *)

type unop =
  | Neg (* integer negation *)
  | Not (* boolean negation *)
  | Fneg (* float negation *)
  | Int_of_float
  | Float_of_int
  | Int_of_bool
  | Int_of_enum

type binop =
  (* integer arithmetic *)
  | Add
  | Sub
  | Mul
  | Div (* raises a runtime trap on divide-by-zero *)
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  (* integer comparison *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  (* float arithmetic / comparison *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Feq
  | Fne
  | Flt
  | Fle
  | Fgt
  | Fge
  (* booleans *)
  | And
  | Or
  (* pointers: [Padd p n] advances the offset; [Peq] compares base+offset *)
  | Padd
  | Peq

type atom =
  | Unit
  | Int of int
  | Float of float
  | Bool of bool
  | Enum of int * int (* cardinality, value *)
  | Var of Var.t
  | Fun of string (* reference to a global function *)
  | Nil of Types.ty (* null reference of the given (reference) type *)

type exp =
  (* bindings; the bound variable is immutable *)
  | Let_atom of Var.t * Types.ty * atom * exp
  (* checked downcast from [Tany]: traps at runtime if the value's
     representation does not match the target type *)
  | Let_cast of Var.t * Types.ty * atom * exp
  | Let_unop of Var.t * Types.ty * unop * atom * exp
  | Let_binop of Var.t * Types.ty * binop * atom * atom * exp
  (* heap allocation *)
  | Let_tuple of Var.t * (Types.ty * atom) list * exp
  | Let_array of Var.t * Types.ty * atom * atom * exp (* elem ty, size, init *)
  | Let_string of Var.t * string * exp (* raw block from a literal *)
  (* heap access; all accesses are bounds- and type-checked at runtime *)
  | Let_proj of Var.t * Types.ty * atom * int * exp
  | Set_proj of atom * int * atom * exp
  | Let_load of Var.t * Types.ty * atom * atom * exp (* block, index *)
  | Store of atom * atom * atom * exp (* block, index, value *)
  (* external (runtime-provided) function call; the only non-tail call *)
  | Let_ext of Var.t * Types.ty * string * atom list * exp
  (* control *)
  | If of atom * exp * exp
  | Switch of atom * (int * exp) list * exp (* scrutinee, cases, default *)
  | Call of atom * atom list (* tail call *)
  | Exit of atom (* process termination with an exit value *)
  (* pseudo-instructions *)
  | Migrate of int * atom * atom * atom list
  | Speculate of atom * atom list
  | Commit of atom * atom * atom list
  | Rollback of atom * atom

type fundef = {
  f_name : string;
  f_params : (Var.t * Types.ty) list;
  f_body : exp;
}

module String_map = Map.Make (String)

type program = {
  p_funs : fundef String_map.t;
  p_main : string;
}

let program funs ~main =
  let p_funs =
    List.fold_left
      (fun acc f ->
        if String_map.mem f.f_name acc then
          invalid_arg ("Ast.program: duplicate function " ^ f.f_name)
        else String_map.add f.f_name f acc)
      String_map.empty funs
  in
  if not (String_map.mem main p_funs) then
    invalid_arg ("Ast.program: no main function " ^ main);
  { p_funs; p_main = main }

let find_fun p name = String_map.find_opt name p.p_funs

let fun_exn p name =
  match find_fun p name with
  | Some f -> f
  | None -> invalid_arg ("Ast.fun_exn: unknown function " ^ name)

let fun_names p = String_map.fold (fun name _ acc -> name :: acc) p.p_funs []
let fun_count p = String_map.cardinal p.p_funs
let iter_funs f p = String_map.iter (fun _ fd -> f fd) p.p_funs
let fold_funs f p acc = String_map.fold (fun _ fd acc -> f fd acc) p.p_funs acc

let map_funs f p =
  { p with p_funs = String_map.map f p.p_funs }

let add_fun p fd = { p with p_funs = String_map.add fd.f_name fd p.p_funs }

let remove_fun p name =
  if String.equal name p.p_main then
    invalid_arg "Ast.remove_fun: cannot remove main";
  { p with p_funs = String_map.remove name p.p_funs }

(* Signature of a function: its parameter types. *)
let signature fd = List.map snd fd.f_params

(* Structural size of an expression (number of AST nodes); used by the
   inliner threshold and the codegen cost model. *)
let rec exp_size = function
  | Let_atom (_, _, _, e)
  | Let_cast (_, _, _, e)
  | Let_unop (_, _, _, _, e)
  | Let_proj (_, _, _, _, e)
  | Let_string (_, _, e) ->
    1 + exp_size e
  | Let_binop (_, _, _, _, _, e)
  | Let_array (_, _, _, _, e)
  | Set_proj (_, _, _, e)
  | Let_load (_, _, _, _, e)
  | Store (_, _, _, e) ->
    1 + exp_size e
  | Let_tuple (_, fields, e) -> 1 + List.length fields + exp_size e
  | Let_ext (_, _, _, args, e) -> 1 + List.length args + exp_size e
  | If (_, e1, e2) -> 1 + exp_size e1 + exp_size e2
  | Switch (_, cases, default) ->
    List.fold_left
      (fun acc (_, e) -> acc + exp_size e)
      (1 + exp_size default)
      cases
  | Call (_, args) -> 1 + List.length args
  | Exit _ -> 1
  | Migrate (_, _, _, args) -> 2 + List.length args
  | Speculate (_, args) -> 2 + List.length args
  | Commit (_, _, args) -> 2 + List.length args
  | Rollback (_, _) -> 2

let program_size p = fold_funs (fun fd acc -> acc + exp_size fd.f_body) p 0

(* Free variables of an atom / expression.  Variables are globally unique,
   so shadowing cannot occur; we still remove bound variables to get a
   precise result. *)
let atom_vars acc = function
  | Var v -> Var.Set.add v acc
  | Unit | Int _ | Float _ | Bool _ | Enum _ | Fun _ | Nil _ -> acc

let atoms_vars acc atoms = List.fold_left atom_vars acc atoms

let rec free_vars_acc acc = function
  | Let_atom (v, _, a, e) | Let_cast (v, _, a, e) ->
    Var.Set.remove v (free_vars_acc (atom_vars acc a) e)
  | Let_unop (v, _, _, a, e) ->
    Var.Set.remove v (free_vars_acc (atom_vars acc a) e)
  | Let_binop (v, _, _, a, b, e) ->
    Var.Set.remove v (free_vars_acc (atom_vars (atom_vars acc a) b) e)
  | Let_tuple (v, fields, e) ->
    let acc = List.fold_left (fun acc (_, a) -> atom_vars acc a) acc fields in
    Var.Set.remove v (free_vars_acc acc e)
  | Let_array (v, _, size, init, e) ->
    Var.Set.remove v (free_vars_acc (atom_vars (atom_vars acc size) init) e)
  | Let_string (v, _, e) -> Var.Set.remove v (free_vars_acc acc e)
  | Let_proj (v, _, a, _, e) ->
    Var.Set.remove v (free_vars_acc (atom_vars acc a) e)
  | Set_proj (a, _, b, e) ->
    free_vars_acc (atom_vars (atom_vars acc a) b) e
  | Let_load (v, _, a, i, e) ->
    Var.Set.remove v (free_vars_acc (atom_vars (atom_vars acc a) i) e)
  | Store (a, i, x, e) ->
    free_vars_acc (atom_vars (atom_vars (atom_vars acc a) i) x) e
  | Let_ext (v, _, _, args, e) ->
    Var.Set.remove v (free_vars_acc (atoms_vars acc args) e)
  | If (a, e1, e2) -> free_vars_acc (free_vars_acc (atom_vars acc a) e1) e2
  | Switch (a, cases, default) ->
    let acc = atom_vars acc a in
    let acc = List.fold_left (fun acc (_, e) -> free_vars_acc acc e) acc cases in
    free_vars_acc acc default
  | Call (f, args) -> atoms_vars (atom_vars acc f) args
  | Exit a -> atom_vars acc a
  | Migrate (_, dst, f, args) ->
    atoms_vars (atom_vars (atom_vars acc dst) f) args
  | Speculate (f, args) -> atoms_vars (atom_vars acc f) args
  | Commit (l, f, args) -> atoms_vars (atom_vars (atom_vars acc l) f) args
  | Rollback (l, c) -> atom_vars (atom_vars acc l) c

let free_vars e = free_vars_acc Var.Set.empty e

(* Function names referenced (via [Fun] atoms) by an expression. *)
let rec called_funs_acc acc e =
  let atom acc = function
    | Fun f -> f :: acc
    | Unit | Int _ | Float _ | Bool _ | Enum _ | Var _ | Nil _ -> acc
  in
  let atoms acc l = List.fold_left atom acc l in
  match e with
  | Let_atom (_, _, a, e)
  | Let_cast (_, _, a, e)
  | Let_unop (_, _, _, a, e)
  | Let_proj (_, _, a, _, e) ->
    called_funs_acc (atom acc a) e
  | Let_binop (_, _, _, a, b, e) -> called_funs_acc (atom (atom acc a) b) e
  | Let_tuple (_, fields, e) ->
    let acc = List.fold_left (fun acc (_, a) -> atom acc a) acc fields in
    called_funs_acc acc e
  | Let_array (_, _, a, b, e) -> called_funs_acc (atom (atom acc a) b) e
  | Let_string (_, _, e) -> called_funs_acc acc e
  | Set_proj (a, _, b, e) -> called_funs_acc (atom (atom acc a) b) e
  | Let_load (_, _, a, b, e) -> called_funs_acc (atom (atom acc a) b) e
  | Store (a, b, c, e) -> called_funs_acc (atom (atom (atom acc a) b) c) e
  | Let_ext (_, _, _, args, e) -> called_funs_acc (atoms acc args) e
  | If (a, e1, e2) -> called_funs_acc (called_funs_acc (atom acc a) e1) e2
  | Switch (a, cases, default) ->
    let acc = atom acc a in
    let acc =
      List.fold_left (fun acc (_, e) -> called_funs_acc acc e) acc cases
    in
    called_funs_acc acc default
  | Call (f, args) -> atoms (atom acc f) args
  | Exit a -> atom acc a
  | Migrate (_, dst, f, args) -> atoms (atom (atom acc dst) f) args
  | Speculate (f, args) -> atoms (atom acc f) args
  | Commit (l, f, args) -> atoms (atom (atom acc l) f) args
  | Rollback (l, c) -> atom (atom acc l) c

let called_funs e = called_funs_acc [] e
