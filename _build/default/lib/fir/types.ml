(* FIR types.

   The FIR is a type-safe intermediate language (paper, Section 3): variables
   are immutable, heap values are mutable, and functions never return (the
   program is in continuation-passing style).  Aggregate values live in the
   heap and are referred to through pointer-table indices; a source-level C
   pointer is a (base + offset) pair whose base is an index (Section 4.1.1).

   [Tptr t] is the type of such a pointer into an array block whose cells all
   have type [t].  [Ttuple tys] is a reference to a fixed, heterogeneous
   block.  [Traw] is a reference to raw byte data (strings, untyped C
   buffers).  [Tfun tys] is a CPS function taking arguments of types [tys]
   and never returning. *)

type ty =
  | Tunit
  | Tint
  | Tfloat
  | Tbool
  | Tenum of int (* cardinality *)
  | Tptr of ty
  | Ttuple of ty list
  | Traw
  | Tfun of ty list
  | Tany
    (* A dynamically-tagged cell: can hold any runtime value; reading it
       back at a specific type requires a checked downcast ([Let_cast]),
       which traps on representation mismatch.  Used by front-end closure
       conversion (a continuation environment is an array of [Tany]); the
       runtime tag check is part of the paper's "runtime type-checking for
       heap operations". *)

let rec equal a b =
  match a, b with
  | Tunit, Tunit | Tint, Tint | Tfloat, Tfloat | Tbool, Tbool | Traw, Traw
  | Tany, Tany ->
    true
  | Tenum n, Tenum m -> n = m
  | Tptr a, Tptr b -> equal a b
  | Ttuple xs, Ttuple ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Tfun xs, Tfun ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Tunit | Tint | Tfloat | Tbool | Tenum _ | Tptr _ | Ttuple _ | Traw
    | Tfun _ | Tany), _ ->
    false

let rec pp fmt t =
  match t with
  | Tunit -> Format.pp_print_string fmt "unit"
  | Tint -> Format.pp_print_string fmt "int"
  | Tfloat -> Format.pp_print_string fmt "float"
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tenum n -> Format.fprintf fmt "enum[%d]" n
  | Tptr t -> Format.fprintf fmt "%a ptr" pp t
  | Ttuple ts ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " * ")
         pp)
      ts
  | Traw -> Format.pp_print_string fmt "raw"
  | Tfun ts ->
    Format.fprintf fmt "(%a) -> ."
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp)
      ts
  | Tany -> Format.pp_print_string fmt "any"

let to_string t = Format.asprintf "%a" pp t

(* A conservative "size in wire cells" of a value of this type; used by cost
   models and by the wire codec to pre-size buffers. *)
let rec cell_size = function
  | Tunit | Tint | Tfloat | Tbool | Tenum _ | Tptr _ | Traw | Tfun _ | Tany
    ->
    1
  | Ttuple ts -> List.fold_left (fun acc t -> acc + cell_size t) 0 ts

(* Is a value of this type represented as a pointer-table index at runtime? *)
let is_reference = function
  | Tptr _ | Ttuple _ | Traw -> true
  | Tunit | Tint | Tfloat | Tbool | Tenum _ | Tfun _ | Tany -> false
