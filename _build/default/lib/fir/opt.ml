(* FIR optimizer.

   Run as part of "recompilation" when a migrated process is rebuilt on the
   target machine, and after front-end lowering.  Passes:

   - constant folding of unary/binary operators and of [If]/[Switch] on
     constant scrutinees;
   - copy propagation (a let binding of an atom is substituted away);
   - dead-code elimination of pure, unused lets;
   - inlining of small or called-once functions (the FIR is CPS, so
     inlining a tail call is pure substitution with alpha-renaming);
   - removal of functions unreachable from [main].

   All passes preserve well-typedness; the pipeline re-typechecks after
   optimization as a defence-in-depth measure. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Substitution with alpha-renaming.                                   *)
(* ------------------------------------------------------------------ *)

let subst_atom env = function
  | Var v as a -> ( match Var.Map.find_opt v env with Some a' -> a' | None -> a)
  | (Unit | Int _ | Float _ | Bool _ | Enum _ | Fun _ | Nil _) as a -> a

(* [rename] controls whether binders are refreshed; inlining a function body
   more than once requires fresh binders to keep variable ids unique. *)
let rec subst_exp ~rename env e =
  let sa = subst_atom env in
  let bind v k =
    if rename then (
      let v' = Var.fresh (Var.name v) in
      k v' (Var.Map.add v (Var v') env))
    else k v env
  in
  match e with
  | Let_atom (v, t, a, e) ->
    let a = sa a in
    bind v (fun v env -> Let_atom (v, t, a, subst_exp ~rename env e))
  | Let_cast (v, t, a, e) ->
    let a = sa a in
    bind v (fun v env -> Let_cast (v, t, a, subst_exp ~rename env e))
  | Let_unop (v, t, op, a, e) ->
    let a = sa a in
    bind v (fun v env -> Let_unop (v, t, op, a, subst_exp ~rename env e))
  | Let_binop (v, t, op, a, b, e) ->
    let a = sa a and b = sa b in
    bind v (fun v env -> Let_binop (v, t, op, a, b, subst_exp ~rename env e))
  | Let_tuple (v, fields, e) ->
    let fields = List.map (fun (t, a) -> t, sa a) fields in
    bind v (fun v env -> Let_tuple (v, fields, subst_exp ~rename env e))
  | Let_array (v, t, size, init, e) ->
    let size = sa size and init = sa init in
    bind v (fun v env ->
        Let_array (v, t, size, init, subst_exp ~rename env e))
  | Let_string (v, s, e) ->
    bind v (fun v env -> Let_string (v, s, subst_exp ~rename env e))
  | Let_proj (v, t, a, i, e) ->
    let a = sa a in
    bind v (fun v env -> Let_proj (v, t, a, i, subst_exp ~rename env e))
  | Set_proj (a, i, x, e) ->
    Set_proj (sa a, i, sa x, subst_exp ~rename env e)
  | Let_load (v, t, a, i, e) ->
    let a = sa a and i = sa i in
    bind v (fun v env -> Let_load (v, t, a, i, subst_exp ~rename env e))
  | Store (a, i, x, e) -> Store (sa a, sa i, sa x, subst_exp ~rename env e)
  | Let_ext (v, t, name, args, e) ->
    let args = List.map sa args in
    bind v (fun v env -> Let_ext (v, t, name, args, subst_exp ~rename env e))
  | If (a, e1, e2) ->
    If (sa a, subst_exp ~rename env e1, subst_exp ~rename env e2)
  | Switch (a, cases, default) ->
    Switch
      ( sa a,
        List.map (fun (n, e) -> n, subst_exp ~rename env e) cases,
        subst_exp ~rename env default )
  | Call (f, args) -> Call (sa f, List.map sa args)
  | Exit a -> Exit (sa a)
  | Migrate (i, dst, f, args) -> Migrate (i, sa dst, sa f, List.map sa args)
  | Speculate (f, args) -> Speculate (sa f, List.map sa args)
  | Commit (l, f, args) -> Commit (sa l, sa f, List.map sa args)
  | Rollback (l, c) -> Rollback (sa l, sa c)

(* ------------------------------------------------------------------ *)
(* Constant folding and copy propagation.                              *)
(* ------------------------------------------------------------------ *)

let fold_unop op a =
  match op, a with
  | Neg, Int n -> Some (Int (-n))
  | Not, Bool b -> Some (Bool (not b))
  | Fneg, Float f -> Some (Float (-.f))
  | Int_of_float, Float f -> Some (Int (int_of_float f))
  | Float_of_int, Int n -> Some (Float (float_of_int n))
  | Int_of_bool, Bool b -> Some (Int (if b then 1 else 0))
  | Int_of_enum, Enum (_, v) -> Some (Int v)
  | ( (Neg | Not | Fneg | Int_of_float | Float_of_int | Int_of_bool
      | Int_of_enum),
      _ ) ->
    None

let fold_binop op a b =
  match op, a, b with
  | Add, Int x, Int y -> Some (Int (x + y))
  | Sub, Int x, Int y -> Some (Int (x - y))
  | Mul, Int x, Int y -> Some (Int (x * y))
  | Div, Int x, Int y when y <> 0 -> Some (Int (x / y))
  | Rem, Int x, Int y when y <> 0 -> Some (Int (x mod y))
  | Band, Int x, Int y -> Some (Int (x land y))
  | Bor, Int x, Int y -> Some (Int (x lor y))
  | Bxor, Int x, Int y -> Some (Int (x lxor y))
  | Shl, Int x, Int y when y >= 0 && y < 62 -> Some (Int (x lsl y))
  | Shr, Int x, Int y when y >= 0 && y < 62 -> Some (Int (x asr y))
  | Eq, Int x, Int y -> Some (Bool (x = y))
  | Ne, Int x, Int y -> Some (Bool (x <> y))
  | Lt, Int x, Int y -> Some (Bool (x < y))
  | Le, Int x, Int y -> Some (Bool (x <= y))
  | Gt, Int x, Int y -> Some (Bool (x > y))
  | Ge, Int x, Int y -> Some (Bool (x >= y))
  | Fadd, Float x, Float y -> Some (Float (x +. y))
  | Fsub, Float x, Float y -> Some (Float (x -. y))
  | Fmul, Float x, Float y -> Some (Float (x *. y))
  | Fdiv, Float x, Float y when y <> 0.0 -> Some (Float (x /. y))
  | Feq, Float x, Float y -> Some (Bool (x = y))
  | Fne, Float x, Float y -> Some (Bool (x <> y))
  | Flt, Float x, Float y -> Some (Bool (x < y))
  | Fle, Float x, Float y -> Some (Bool (x <= y))
  | Fgt, Float x, Float y -> Some (Bool (x > y))
  | Fge, Float x, Float y -> Some (Bool (x >= y))
  | And, Bool x, Bool y -> Some (Bool (x && y))
  | Or, Bool x, Bool y -> Some (Bool (x || y))
  (* algebraic identities *)
  | Add, a, Int 0 | Add, Int 0, a -> Some a
  | Sub, a, Int 0 -> Some a
  | Mul, a, Int 1 | Mul, Int 1, a -> Some a
  | Mul, _, Int 0 | Mul, Int 0, _ -> Some (Int 0)
  | And, a, Bool true | And, Bool true, a -> Some a
  | And, _, Bool false | And, Bool false, _ -> Some (Bool false)
  | Or, a, Bool false | Or, Bool false, a -> Some a
  | Or, _, Bool true | Or, Bool true, _ -> Some (Bool true)
  | Padd, p, Int 0 -> Some p
  | _ -> None

let rec simplify env e =
  let sa = subst_atom env in
  match e with
  | Let_atom (v, _, a, e) ->
    (* copy propagation: replace v by (substituted) a everywhere *)
    simplify (Var.Map.add v (sa a) env) e
  | Let_cast (v, t, a, e) -> Let_cast (v, t, sa a, simplify env e)
  | Let_unop (v, t, op, a, e) -> (
    let a = sa a in
    match fold_unop op a with
    | Some a' -> simplify (Var.Map.add v a' env) e
    | None -> Let_unop (v, t, op, a, simplify env e))
  | Let_binop (v, t, op, a, b, e) -> (
    let a = sa a and b = sa b in
    match fold_binop op a b with
    | Some a' -> simplify (Var.Map.add v a' env) e
    | None -> Let_binop (v, t, op, a, b, simplify env e))
  | Let_tuple (v, fields, e) ->
    Let_tuple (v, List.map (fun (t, a) -> t, sa a) fields, simplify env e)
  | Let_array (v, t, size, init, e) ->
    Let_array (v, t, sa size, sa init, simplify env e)
  | Let_string (v, s, e) -> Let_string (v, s, simplify env e)
  | Let_proj (v, t, a, i, e) -> Let_proj (v, t, sa a, i, simplify env e)
  | Set_proj (a, i, x, e) -> Set_proj (sa a, i, sa x, simplify env e)
  | Let_load (v, t, a, i, e) -> Let_load (v, t, sa a, sa i, simplify env e)
  | Store (a, i, x, e) -> Store (sa a, sa i, sa x, simplify env e)
  | Let_ext (v, t, name, args, e) ->
    Let_ext (v, t, name, List.map sa args, simplify env e)
  | If (a, e1, e2) -> (
    match sa a with
    | Bool true -> simplify env e1
    | Bool false -> simplify env e2
    | a -> If (a, simplify env e1, simplify env e2))
  | Switch (a, cases, default) -> (
    match sa a with
    | Int n | Enum (_, n) -> (
      match List.assoc_opt n cases with
      | Some e -> simplify env e
      | None -> simplify env default)
    | a ->
      Switch
        (a, List.map (fun (n, e) -> n, simplify env e) cases,
         simplify env default))
  | Call (f, args) -> Call (sa f, List.map sa args)
  | Exit a -> Exit (sa a)
  | Migrate (i, dst, f, args) -> Migrate (i, sa dst, sa f, List.map sa args)
  | Speculate (f, args) -> Speculate (sa f, List.map sa args)
  | Commit (l, f, args) -> Commit (sa l, sa f, List.map sa args)
  | Rollback (l, c) -> Rollback (sa l, sa c)

(* ------------------------------------------------------------------ *)
(* Common-subexpression elimination.                                   *)
(* ------------------------------------------------------------------ *)

(* Pure unary/binary operations with identical operands compute the same
   value; a later occurrence is replaced by the earlier binding.  Because
   the FIR is a tree of expressions and a let dominates everything below
   it, the available-expression environment simply flows down — including
   into both branches of an [If]/[Switch].  Heap reads are NOT candidates
   (stores may intervene); trapping operations (Div/Rem) are candidates
   only because replacing a LATER duplicate cannot remove the first
   (dominating) trap. *)

type cse_key =
  | Kunop of unop * atom
  | Kbinop of binop * atom * atom

module Cse_map = Map.Make (struct
  type t = cse_key

  let compare = compare
end)

let commutative = function
  | Add | Mul | Band | Bor | Bxor | Eq | Ne | Fadd | Fmul | Feq | Fne
  | And | Or | Peq ->
    true
  | Sub | Div | Rem | Shl | Shr | Lt | Le | Gt | Ge | Fsub | Fdiv | Flt
  | Fle | Fgt | Fge | Padd ->
    false

(* normalize operand order of commutative operators so [a+b] and [b+a]
   share a key *)
let binop_key op a b =
  if commutative op && compare b a < 0 then Kbinop (op, b, a)
  else Kbinop (op, a, b)

let rec cse_exp env subst e =
  let sa = subst_atom subst in
  match e with
  | Let_unop (v, t, op, a, rest) -> (
    let a = sa a in
    let key = Kunop (op, a) in
    match Cse_map.find_opt key env with
    | Some prior -> cse_exp env (Var.Map.add v prior subst) rest
    | None ->
      Let_unop
        (v, t, op, a, cse_exp (Cse_map.add key (Var v) env) subst rest))
  | Let_binop (v, t, op, a, b, rest) -> (
    let a = sa a and b = sa b in
    let key = binop_key op a b in
    match Cse_map.find_opt key env with
    | Some prior -> cse_exp env (Var.Map.add v prior subst) rest
    | None ->
      Let_binop
        (v, t, op, a, b, cse_exp (Cse_map.add key (Var v) env) subst rest))
  | Let_atom (v, t, a, rest) -> Let_atom (v, t, sa a, cse_exp env subst rest)
  | Let_cast (v, t, a, rest) -> Let_cast (v, t, sa a, cse_exp env subst rest)
  | Let_tuple (v, fields, rest) ->
    Let_tuple
      (v, List.map (fun (t, a) -> t, sa a) fields, cse_exp env subst rest)
  | Let_array (v, t, size, init, rest) ->
    Let_array (v, t, sa size, sa init, cse_exp env subst rest)
  | Let_string (v, str, rest) -> Let_string (v, str, cse_exp env subst rest)
  | Let_proj (v, t, a, i, rest) ->
    Let_proj (v, t, sa a, i, cse_exp env subst rest)
  | Set_proj (a, i, x, rest) ->
    Set_proj (sa a, i, sa x, cse_exp env subst rest)
  | Let_load (v, t, a, i, rest) ->
    Let_load (v, t, sa a, sa i, cse_exp env subst rest)
  | Store (a, i, x, rest) -> Store (sa a, sa i, sa x, cse_exp env subst rest)
  | Let_ext (v, t, name, args, rest) ->
    Let_ext (v, t, name, List.map sa args, cse_exp env subst rest)
  | If (a, e1, e2) -> If (sa a, cse_exp env subst e1, cse_exp env subst e2)
  | Switch (a, cases, default) ->
    Switch
      ( sa a,
        List.map (fun (n, e) -> n, cse_exp env subst e) cases,
        cse_exp env subst default )
  | Call (f, args) -> Call (sa f, List.map sa args)
  | Exit a -> Exit (sa a)
  | Migrate (i, dst, f, args) -> Migrate (i, sa dst, sa f, List.map sa args)
  | Speculate (f, args) -> Speculate (sa f, List.map sa args)
  | Commit (l, f, args) -> Commit (sa l, sa f, List.map sa args)
  | Rollback (l, c) -> Rollback (sa l, sa c)

let eliminate_common_subexpressions e = cse_exp Cse_map.empty Var.Map.empty e

(* ------------------------------------------------------------------ *)
(* Dead-code elimination (pure, unused lets).                          *)
(* ------------------------------------------------------------------ *)

let rec eliminate_dead e =
  match e with
  | Let_atom (v, t, a, e) ->
    let e = eliminate_dead e in
    if Var.Set.mem v (free_vars e) then Let_atom (v, t, a, e) else e
  | Let_cast (v, t, a, e) ->
    (* casts can trap; never eliminated *)
    Let_cast (v, t, a, eliminate_dead e)
  | Let_unop (v, t, op, a, e) ->
    let e = eliminate_dead e in
    if Var.Set.mem v (free_vars e) then Let_unop (v, t, op, a, e) else e
  | Let_binop (v, t, op, a, b, e) ->
    let e = eliminate_dead e in
    (* Div/Rem can trap; keep them. *)
    let can_trap = match op with Div | Rem -> true | _ -> false in
    if can_trap || Var.Set.mem v (free_vars e) then
      Let_binop (v, t, op, a, b, e)
    else e
  | Let_tuple (v, fields, e) ->
    let e = eliminate_dead e in
    if Var.Set.mem v (free_vars e) then Let_tuple (v, fields, e) else e
  | Let_array (v, t, size, init, e) ->
    let e = eliminate_dead e in
    if Var.Set.mem v (free_vars e) then Let_array (v, t, size, init, e) else e
  | Let_string (v, s, e) ->
    let e = eliminate_dead e in
    if Var.Set.mem v (free_vars e) then Let_string (v, s, e) else e
  | Let_proj (v, t, a, i, e) ->
    (* loads can trap on invalid pointers; projections on nil likewise *)
    Let_proj (v, t, a, i, eliminate_dead e)
  | Set_proj (a, i, x, e) -> Set_proj (a, i, x, eliminate_dead e)
  | Let_load (v, t, a, i, e) -> Let_load (v, t, a, i, eliminate_dead e)
  | Store (a, i, x, e) -> Store (a, i, x, eliminate_dead e)
  | Let_ext (v, t, name, args, e) ->
    (* externs are effectful; never eliminated *)
    Let_ext (v, t, name, args, eliminate_dead e)
  | If (a, e1, e2) -> If (a, eliminate_dead e1, eliminate_dead e2)
  | Switch (a, cases, default) ->
    Switch
      ( a,
        List.map (fun (n, e) -> n, eliminate_dead e) cases,
        eliminate_dead default )
  | (Call _ | Exit _ | Migrate _ | Speculate _ | Commit _ | Rollback _) as e
    ->
    e

(* ------------------------------------------------------------------ *)
(* Inlining.                                                           *)
(* ------------------------------------------------------------------ *)

let default_inline_threshold = 24

(* A function is inlinable at a call site if it is small and its body does
   not contain migration points or speculation operations: those record a
   resume label / continuation identity, which must stay stable across
   recompilations (paper, Section 4.2.1 — the label [i] correlates runtime
   execution points with FIR points). *)
let rec has_pseudo = function
  | Migrate _ | Speculate _ | Commit _ | Rollback _ -> true
  | Let_atom (_, _, _, e)
  | Let_cast (_, _, _, e)
  | Let_unop (_, _, _, _, e)
  | Let_binop (_, _, _, _, _, e)
  | Let_tuple (_, _, e)
  | Let_array (_, _, _, _, e)
  | Let_string (_, _, e)
  | Let_proj (_, _, _, _, e)
  | Set_proj (_, _, _, e)
  | Let_load (_, _, _, _, e)
  | Store (_, _, _, e)
  | Let_ext (_, _, _, _, e) ->
    has_pseudo e
  | If (_, e1, e2) -> has_pseudo e1 || has_pseudo e2
  | Switch (_, cases, default) ->
    List.exists (fun (_, e) -> has_pseudo e) cases || has_pseudo default
  | Call _ | Exit _ -> false

let inlinable ~threshold fd =
  exp_size fd.f_body <= threshold && not (has_pseudo fd.f_body)

(* Count static call sites of each function, to find called-once targets. *)
let call_counts p =
  let counts = Hashtbl.create 64 in
  let bump f = Hashtbl.replace counts f (1 + Option.value ~default:0
                                           (Hashtbl.find_opt counts f)) in
  iter_funs (fun fd -> List.iter bump (called_funs fd.f_body)) p;
  counts

let rec inline_exp p ~threshold ~depth e =
  if depth <= 0 then e
  else
    match e with
    | Call (Fun f, args) -> (
      match find_fun p f with
      | Some fd
        when inlinable ~threshold fd
             && List.length fd.f_params = List.length args ->
        let env =
          List.fold_left2
            (fun env (v, _) a -> Var.Map.add v a env)
            Var.Map.empty fd.f_params args
        in
        let body = subst_exp ~rename:true env fd.f_body in
        inline_exp p ~threshold ~depth:(depth - 1) body
      | Some _ | None -> e)
    | Let_atom (v, t, a, e) ->
      Let_atom (v, t, a, inline_exp p ~threshold ~depth e)
    | Let_cast (v, t, a, e) ->
      Let_cast (v, t, a, inline_exp p ~threshold ~depth e)
    | Let_unop (v, t, op, a, e) ->
      Let_unop (v, t, op, a, inline_exp p ~threshold ~depth e)
    | Let_binop (v, t, op, a, b, e) ->
      Let_binop (v, t, op, a, b, inline_exp p ~threshold ~depth e)
    | Let_tuple (v, fields, e) ->
      Let_tuple (v, fields, inline_exp p ~threshold ~depth e)
    | Let_array (v, t, size, init, e) ->
      Let_array (v, t, size, init, inline_exp p ~threshold ~depth e)
    | Let_string (v, s, e) ->
      Let_string (v, s, inline_exp p ~threshold ~depth e)
    | Let_proj (v, t, a, i, e) ->
      Let_proj (v, t, a, i, inline_exp p ~threshold ~depth e)
    | Set_proj (a, i, x, e) ->
      Set_proj (a, i, x, inline_exp p ~threshold ~depth e)
    | Let_load (v, t, a, i, e) ->
      Let_load (v, t, a, i, inline_exp p ~threshold ~depth e)
    | Store (a, i, x, e) -> Store (a, i, x, inline_exp p ~threshold ~depth e)
    | Let_ext (v, t, name, args, e) ->
      Let_ext (v, t, name, args, inline_exp p ~threshold ~depth e)
    | If (a, e1, e2) ->
      If
        ( a,
          inline_exp p ~threshold ~depth e1,
          inline_exp p ~threshold ~depth e2 )
    | Switch (a, cases, default) ->
      Switch
        ( a,
          List.map (fun (n, e) -> n, inline_exp p ~threshold ~depth e) cases,
          inline_exp p ~threshold ~depth default )
    | (Call _ | Exit _ | Migrate _ | Speculate _ | Commit _ | Rollback _) as
      e ->
      e

(* ------------------------------------------------------------------ *)
(* Reachability.                                                       *)
(* ------------------------------------------------------------------ *)

(* Functions reachable from main through [Fun] atoms.  Unreachable
   functions are dropped: this keeps migrated images small. *)
let reachable p =
  let seen = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      match find_fun p name with
      | Some fd -> List.iter visit (called_funs fd.f_body)
      | None -> ()
    end
  in
  visit p.p_main;
  seen

let remove_unreachable p =
  let live = reachable p in
  let funs =
    String_map.filter (fun name _ -> Hashtbl.mem live name) p.p_funs
  in
  { p with p_funs = funs }

(* ------------------------------------------------------------------ *)
(* The pass pipeline.                                                  *)
(* ------------------------------------------------------------------ *)

let optimize_exp ?(threshold = default_inline_threshold) p e =
  let e = simplify Var.Map.empty e in
  let e = inline_exp p ~threshold ~depth:3 e in
  let e = simplify Var.Map.empty e in
  let e = eliminate_common_subexpressions e in
  eliminate_dead e

let optimize ?(threshold = default_inline_threshold) p =
  let p = map_funs (fun fd -> { fd with f_body = optimize_exp ~threshold p fd.f_body }) p in
  remove_unreachable p

(* Expose call_counts for diagnostics and tests. *)
let static_call_count p name =
  Option.value ~default:0 (Hashtbl.find_opt (call_counts p) name)
