(** The FIR abstract syntax (paper, Sections 3, 4.2.1 and 4.3.1).

    Continuation-passing style: every function ends in a tail call, a
    process exit, or a pseudo-instruction; loops are recursive functions;
    variables are immutable and the heap is mutable.

    Pseudo-instructions:
    - [Migrate (i, dst, f, args)] — the paper's
      [migrate \[i, aptr, aoff\] f(a1...an)]: [i] is the unique resume
      label, [dst] points to the raw target string, [f] is the
      continuation; the live variables are exactly [args].
    - [Speculate (f, args)] — enters a level and calls [f] with a fresh
      rollback code [0] prepended; on rollback [f] is re-called with the
      same [args] and the new code.
    - [Commit (l, f, args)] — folds level [l] into its parent, then calls
      [f args].
    - [Rollback (l, c)] — restores the state at entry to level [l] and
      re-enters it with code [c]. *)

type unop =
  | Neg
  | Not
  | Fneg
  | Int_of_float
  | Float_of_int
  | Int_of_bool
  | Int_of_enum

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** traps on zero *)
  | Rem  (** traps on zero *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Feq
  | Fne
  | Flt
  | Fle
  | Fgt
  | Fge
  | And
  | Or
  | Padd  (** pointer + int: advance the offset *)
  | Peq  (** pointer equality (base and offset) *)

type atom =
  | Unit
  | Int of int
  | Float of float
  | Bool of bool
  | Enum of int * int  (** cardinality, value *)
  | Var of Var.t
  | Fun of string  (** reference to a global function *)
  | Nil of Types.ty  (** null reference of a reference type *)

type exp =
  | Let_atom of Var.t * Types.ty * atom * exp
  | Let_cast of Var.t * Types.ty * atom * exp
      (** checked downcast from [Tany]; traps on mismatch *)
  | Let_unop of Var.t * Types.ty * unop * atom * exp
  | Let_binop of Var.t * Types.ty * binop * atom * atom * exp
  | Let_tuple of Var.t * (Types.ty * atom) list * exp
  | Let_array of Var.t * Types.ty * atom * atom * exp
      (** element type, size, initial value *)
  | Let_string of Var.t * string * exp  (** raw block from a literal *)
  | Let_proj of Var.t * Types.ty * atom * int * exp
  | Set_proj of atom * int * atom * exp
  | Let_load of Var.t * Types.ty * atom * atom * exp  (** block, index *)
  | Store of atom * atom * atom * exp  (** block, index, value *)
  | Let_ext of Var.t * Types.ty * string * atom list * exp
      (** external call: the only non-tail call *)
  | If of atom * exp * exp
  | Switch of atom * (int * exp) list * exp  (** cases, default *)
  | Call of atom * atom list  (** tail call *)
  | Exit of atom
  | Migrate of int * atom * atom * atom list
  | Speculate of atom * atom list
  | Commit of atom * atom * atom list
  | Rollback of atom * atom

type fundef = {
  f_name : string;
  f_params : (Var.t * Types.ty) list;
  f_body : exp;
}

module String_map : Map.S with type key = string

type program = { p_funs : fundef String_map.t; p_main : string }

val program : fundef list -> main:string -> program
(** @raise Invalid_argument on duplicate names or a missing main. *)

val find_fun : program -> string -> fundef option
val fun_exn : program -> string -> fundef
val fun_names : program -> string list
val fun_count : program -> int
val iter_funs : (fundef -> unit) -> program -> unit
val fold_funs : (fundef -> 'a -> 'a) -> program -> 'a -> 'a
val map_funs : (fundef -> fundef) -> program -> program
val add_fun : program -> fundef -> program
val remove_fun : program -> string -> program
val signature : fundef -> Types.ty list

val exp_size : exp -> int
(** Structural size (AST nodes); the inliner threshold and the simulated
    compile-cost unit. *)

val program_size : program -> int
val free_vars : exp -> Var.Set.t
val called_funs : exp -> string list
