(** FIR optimizer — the "compiler" part of recompilation when a migrated
    process is rebuilt on the target, and the cleanup pass after
    front-end lowering.

    Passes: constant folding (including [If]/[Switch] on constants), copy
    propagation, common-subexpression elimination of pure operations,
    dead-code elimination of pure unused lets (trapping operations are
    kept), inlining of small functions — never of bodies containing
    migration or speculation points, whose resume labels and continuation
    identities must stay stable — and removal of functions unreachable
    from [main].  All passes preserve well-typedness. *)

val default_inline_threshold : int

val optimize : ?threshold:int -> Ast.program -> Ast.program

val optimize_exp : ?threshold:int -> Ast.program -> Ast.exp -> Ast.exp

val subst_exp : rename:bool -> Ast.atom Var.Map.t -> Ast.exp -> Ast.exp
(** Capture-avoiding substitution; [rename] refreshes binders (required
    when a body is duplicated). *)

val eliminate_common_subexpressions : Ast.exp -> Ast.exp

val has_pseudo : Ast.exp -> bool
(** Does the expression contain migration/speculation instructions? *)

val reachable : Ast.program -> (string, unit) Hashtbl.t
val remove_unreachable : Ast.program -> Ast.program
val static_call_count : Ast.program -> string -> int
