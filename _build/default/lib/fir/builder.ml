(* A combinator DSL for constructing FIR programs from OCaml.

   Every binding combinator takes the continuation as its last argument and
   passes the freshly bound variable to it as an atom, mirroring the CPS
   structure of the FIR itself:

     Builder.(func "main" [] (fun [] ->
       binop Tint Add (int 1) (int 2) (fun sum ->
       ext Tunit "print_int" [sum] (fun _ ->
       exit_ (int 0)))))

   The DSL is used by the test suites, the benches, and the embedded version
   of the grid application. *)

open Ast

type k = atom -> exp

let int n = Int n
let float f = Float f
let bool b = Bool b
let unit = Unit
let enum card v = Enum (card, v)
let fn name = Fun name
let nil t = Nil t

let atom ?(name = "t") ty a (k : k) =
  let v = Var.fresh name in
  Let_atom (v, ty, a, k (Var v))

(* Upcast: bind any value at type [Tany]. *)
let any ?(name = "a") a (k : k) = atom ~name Types.Tany a k

(* Checked downcast from [Tany]. *)
let cast ?(name = "t") ty a (k : k) =
  let v = Var.fresh name in
  Let_cast (v, ty, a, k (Var v))

let unop ?(name = "t") ty op a (k : k) =
  let v = Var.fresh name in
  Let_unop (v, ty, op, a, k (Var v))

let binop ?(name = "t") ty op a b (k : k) =
  let v = Var.fresh name in
  Let_binop (v, ty, op, a, b, k (Var v))

let tuple ?(name = "tup") fields (k : k) =
  let v = Var.fresh name in
  Let_tuple (v, fields, k (Var v))

let array ?(name = "arr") ty ~size ~init (k : k) =
  let v = Var.fresh name in
  Let_array (v, ty, size, init, k (Var v))

let string ?(name = "str") s (k : k) =
  let v = Var.fresh name in
  Let_string (v, s, k (Var v))

let proj ?(name = "fld") ty a i (k : k) =
  let v = Var.fresh name in
  Let_proj (v, ty, a, i, k (Var v))

let set_proj a i x e = Set_proj (a, i, x, e)

let load ?(name = "elt") ty a i (k : k) =
  let v = Var.fresh name in
  Let_load (v, ty, a, i, k (Var v))

let store a i x e = Store (a, i, x, e)

let ext ?(name = "r") ty fname args (k : k) =
  let v = Var.fresh name in
  Let_ext (v, ty, fname, args, k (Var v))

let if_ c e1 e2 = If (c, e1, e2)
let switch a cases default = Switch (a, cases, default)
let call f args = Call (f, args)
let callf name args = Call (Fun name, args)
let exit_ a = Exit a
let migrate ~label dst f args = Migrate (label, dst, f, args)
let speculate f args = Speculate (f, args)
let commit l f args = Commit (l, f, args)
let rollback l c = Rollback (l, c)

(* Arithmetic shorthands (integer). *)
let add a b k = binop Types.Tint Add a b k
let sub a b k = binop Types.Tint Sub a b k
let mul a b k = binop Types.Tint Mul a b k
let div a b k = binop Types.Tint Div a b k
let rem a b k = binop Types.Tint Rem a b k
let lt a b k = binop Types.Tbool Lt a b k
let le a b k = binop Types.Tbool Le a b k
let gt a b k = binop Types.Tbool Gt a b k
let ge a b k = binop Types.Tbool Ge a b k
let eq a b k = binop Types.Tbool Eq a b k
let ne a b k = binop Types.Tbool Ne a b k

(* Function and program construction.  [func] allocates fresh parameter
   variables from (name, ty) pairs and hands the corresponding atoms to the
   body builder. *)
let func name params body =
  let vars = List.map (fun (n, t) -> Var.fresh n, t) params in
  let atoms = List.map (fun (v, _) -> Var v) vars in
  { f_name = name; f_params = vars; f_body = body atoms }

let prog ?(main = "main") funs = program funs ~main

(* A direct-style loop helper: builds the recursive function encoding of
     for (i = lo; i < hi; i++) body
   The generated function threads an accumulator list [state] through the
   iterations; [body] receives (i, state, continue) where [continue] takes
   the next state, and [after] receives the final state. *)
let for_loop ~name ~lo ~hi ~state_tys ~state ~body ~after =
  let loop_name = name in
  let params = ("i", Types.Tint) :: List.map (fun t -> "s", t) state_tys in
  let fd =
    func loop_name params (fun args ->
        match args with
        | i :: st ->
          binop Types.Tbool Lt i hi (fun cond ->
              if_ cond
                (body i st (fun st' ->
                     add i (int 1) (fun i' -> callf loop_name (i' :: st'))))
                (after st))
        | [] -> invalid_arg "for_loop: impossible arity")
  in
  fd, callf loop_name (lo :: state)
