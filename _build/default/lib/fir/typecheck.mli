(** FIR typechecker — the safety check a migration target runs before
    resuming a received process (paper, Section 4.2), also applied after
    every front-end lowering and optimizer pass.

    External functions are checked against a caller-supplied signature
    lookup; unknown externs are errors under [~strict:true] (the
    migration-server setting) and trusted otherwise. *)

exception Type_error of string

type extern_lookup = string -> (Types.ty list * Types.ty) option

val no_externs : extern_lookup

val assignable : expected:Types.ty -> Types.ty -> bool
(** Assignment compatibility: a [Tany] sink accepts any value. *)

val check_program :
  ?strict:bool -> ?externs:extern_lookup -> Ast.program ->
  (unit, string) result

val well_typed :
  ?strict:bool -> ?externs:extern_lookup -> Ast.program -> bool

val check_exn :
  ?strict:bool -> ?externs:extern_lookup -> Ast.program -> unit
(** @raise Type_error on an ill-typed program. *)
