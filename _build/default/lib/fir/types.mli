(** FIR types (paper, Section 3).

    The FIR is type-safe: variables are immutable, heap values are
    mutable, functions never return (CPS).  Aggregates live in the heap
    and are referred to through pointer-table indices; a source-level C
    pointer is a (base + offset) pair whose base is an index. *)

type ty =
  | Tunit
  | Tint
  | Tfloat
  | Tbool
  | Tenum of int  (** cardinality *)
  | Tptr of ty  (** pointer into an array block of [ty] cells *)
  | Ttuple of ty list  (** reference to a fixed heterogeneous block *)
  | Traw  (** reference to raw byte data *)
  | Tfun of ty list  (** CPS function: takes arguments, never returns *)
  | Tany
      (** dynamically-tagged cell; reading back at a specific type is a
          checked downcast ([Let_cast]) that traps on mismatch.  Used by
          front-end closure conversion. *)

val equal : ty -> ty -> bool
val pp : Format.formatter -> ty -> unit
val to_string : ty -> string

val cell_size : ty -> int
(** Conservative size in wire cells (1 for everything but tuples). *)

val is_reference : ty -> bool
(** Represented as a pointer-table index at runtime? *)
