(** FIR variables: immutable, globally unique by integer id (the name is
    kept for printing).  Uniqueness lets the optimizer substitute without
    capture and the serializer refer to variables by id. *)

type t

val fresh : string -> t
(** A new variable with a globally fresh id. *)

val of_id : id:int -> name:string -> t
(** Rebuild a deserialized variable; the global counter is bumped past
    [id] so later {!fresh} calls cannot collide. *)

val id : t -> int
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
