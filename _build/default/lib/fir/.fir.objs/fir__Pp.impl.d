lib/fir/pp.ml: Ast Format List Types Var
