lib/fir/var.mli: Format Hashtbl Map Set
