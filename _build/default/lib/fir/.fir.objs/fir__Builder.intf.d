lib/fir/builder.mli: Ast Types
