lib/fir/typecheck.mli: Ast Types
