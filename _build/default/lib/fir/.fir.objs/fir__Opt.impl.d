lib/fir/opt.ml: Ast Hashtbl List Map Option String_map Var
