lib/fir/builder.ml: Ast List Types Var
