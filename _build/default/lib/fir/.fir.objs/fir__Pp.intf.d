lib/fir/pp.mli: Ast Format
