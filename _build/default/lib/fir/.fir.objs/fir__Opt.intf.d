lib/fir/opt.mli: Ast Hashtbl Var
