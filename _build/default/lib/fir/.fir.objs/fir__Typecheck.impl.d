lib/fir/typecheck.ml: Ast Format List Pp Types Var
