lib/fir/serial.mli: Ast Buffer Types
