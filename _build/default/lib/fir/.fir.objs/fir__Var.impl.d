lib/fir/var.ml: Format Hashtbl Int Map Printf Set
