lib/fir/ast.ml: List Map String Types Var
