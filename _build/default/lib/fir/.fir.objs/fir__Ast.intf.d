lib/fir/ast.mli: Map Types Var
