lib/fir/types.mli: Format
