lib/fir/serial.ml: Ast Buffer Char Int64 List Printf String Types Var
