lib/fir/types.ml: Format List
