(* FIR typechecker.

   This is the safety check run by a migration target before resuming a
   received process (paper, Section 4.2): the FIR is re-typechecked so that
   a malicious or corrupted image cannot make the runtime perform unsafe
   heap accesses.  It is also run after every front-end lowering and after
   every optimizer pass in the compile pipeline.

   External functions are typechecked against a signature lookup supplied by
   the caller; an unknown external is an error under [~strict:true] (the
   migration-server setting) and trusted otherwise. *)

open Ast

exception Type_error of string

type extern_lookup = string -> (Types.ty list * Types.ty) option

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let type_of_atom p env = function
  | Unit -> Types.Tunit
  | Int _ -> Types.Tint
  | Float _ -> Types.Tfloat
  | Bool _ -> Types.Tbool
  | Enum (card, v) ->
    if v < 0 || v >= card then err "enum value %d out of range [0,%d)" v card;
    Types.Tenum card
  | Var v -> (
    match Var.Map.find_opt v env with
    | Some t -> t
    | None -> err "unbound variable %s" (Var.to_string v))
  | Fun f -> (
    match find_fun p f with
    | Some fd -> Types.Tfun (signature fd)
    | None -> err "unknown function @@%s" f)
  | Nil t ->
    if Types.is_reference t then t
    else err "nil of non-reference type %s" (Types.to_string t)

(* Assignment compatibility: a [Tany] sink accepts any value (the upcast
   is representation-free; reading back requires a checked [Let_cast]). *)
let assignable ~expected t =
  Types.equal expected t || Types.equal expected Types.Tany

let check_atom p env expected a =
  let t = type_of_atom p env a in
  if not (assignable ~expected t) then
    err "atom %s has type %s, expected %s"
      (Format.asprintf "%a" Pp.pp_atom a)
      (Types.to_string t) (Types.to_string expected)

let unop_signature op arg_ty =
  match op, arg_ty with
  | Neg, Types.Tint -> Types.Tint
  | Not, Types.Tbool -> Types.Tbool
  | Fneg, Types.Tfloat -> Types.Tfloat
  | Int_of_float, Types.Tfloat -> Types.Tint
  | Float_of_int, Types.Tint -> Types.Tfloat
  | Int_of_bool, Types.Tbool -> Types.Tint
  | Int_of_enum, Types.Tenum _ -> Types.Tint
  | ( (Neg | Not | Fneg | Int_of_float | Float_of_int | Int_of_bool
      | Int_of_enum),
      t ) ->
    err "unary %s applied to %s" (Pp.unop_to_string op) (Types.to_string t)

let binop_signature op ta tb =
  let open Types in
  let int_arith = function
    | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr -> true
    | _ -> false
  in
  let int_cmp = function Eq | Ne | Lt | Le | Gt | Ge -> true | _ -> false in
  let float_arith = function Fadd | Fsub | Fmul | Fdiv -> true | _ -> false in
  let float_cmp = function
    | Feq | Fne | Flt | Fle | Fgt | Fge -> true
    | _ -> false
  in
  match op, ta, tb with
  | op, Tint, Tint when int_arith op -> Tint
  | op, Tint, Tint when int_cmp op -> Tbool
  | op, Tfloat, Tfloat when float_arith op -> Tfloat
  | op, Tfloat, Tfloat when float_cmp op -> Tbool
  | (And | Or), Tbool, Tbool -> Tbool
  | Padd, Tptr t, Tint -> Tptr t
  | Padd, Traw, Tint -> Traw
  | Peq, Tptr a, Tptr b when equal a b -> Tbool
  | Peq, Traw, Traw -> Tbool
  | Peq, Ttuple a, Ttuple b when equal (Ttuple a) (Ttuple b) -> Tbool
  | op, ta, tb ->
    err "binary %s applied to %s and %s" (Pp.binop_to_string op)
      (to_string ta) (to_string tb)

let check_fun_atom p env f args_tys what =
  match type_of_atom p env f with
  | Types.Tfun tys ->
    if List.length tys <> List.length args_tys then
      err "%s: arity mismatch (%d parameters, %d arguments)" what
        (List.length tys) (List.length args_tys)
    else
      List.iteri
        (fun i (want, got) ->
          if not (assignable ~expected:want got) then
            err "%s: argument %d has type %s, expected %s" what i
              (Types.to_string got) (Types.to_string want))
        (List.combine tys args_tys)
  | t -> err "%s: callee has non-function type %s" what (Types.to_string t)

let rec check_exp p ~strict ~externs env = function
  | Let_atom (v, t, a, e) ->
    (* any value may be bound at type Tany (upcast is representation-free) *)
    if Types.equal t Types.Tany then ignore (type_of_atom p env a)
    else check_atom p env t a;
    check_exp p ~strict ~externs (Var.Map.add v t env) e
  | Let_cast (v, t, a, e) ->
    (* checked downcast, normally from Tany; any source type is accepted
       statically because the representation check happens at runtime (and
       optimizer passes may substitute concrete atoms into cast
       positions) *)
    ignore (type_of_atom p env a);
    if Types.equal t Types.Tany then err "cast to any is never needed";
    check_exp p ~strict ~externs (Var.Map.add v t env) e
  | Let_unop (v, t, op, a, e) ->
    let ta = type_of_atom p env a in
    let tr = unop_signature op ta in
    if not (Types.equal t tr) then
      err "let %s: unop result is %s, annotated %s" (Var.to_string v)
        (Types.to_string tr) (Types.to_string t);
    check_exp p ~strict ~externs (Var.Map.add v t env) e
  | Let_binop (v, t, op, a, b, e) ->
    let tr = binop_signature op (type_of_atom p env a) (type_of_atom p env b) in
    if not (Types.equal t tr) then
      err "let %s: binop result is %s, annotated %s" (Var.to_string v)
        (Types.to_string tr) (Types.to_string t);
    check_exp p ~strict ~externs (Var.Map.add v t env) e
  | Let_tuple (v, fields, e) ->
    List.iter (fun (t, a) -> check_atom p env t a) fields;
    let t = Types.Ttuple (List.map fst fields) in
    check_exp p ~strict ~externs (Var.Map.add v t env) e
  | Let_array (v, t, size, init, e) ->
    check_atom p env Types.Tint size;
    check_atom p env t init;
    check_exp p ~strict ~externs (Var.Map.add v (Types.Tptr t) env) e
  | Let_string (v, _, e) ->
    check_exp p ~strict ~externs (Var.Map.add v Types.Traw env) e
  | Let_proj (v, t, a, i, e) -> (
    match type_of_atom p env a with
    | Types.Ttuple tys ->
      if i < 0 || i >= List.length tys then
        err "projection .%d out of bounds for %d-tuple" i (List.length tys);
      let ti = List.nth tys i in
      if not (Types.equal t ti) then
        err "projection .%d has type %s, annotated %s" i (Types.to_string ti)
          (Types.to_string t);
      check_exp p ~strict ~externs (Var.Map.add v t env) e
    | t -> err "projection from non-tuple type %s" (Types.to_string t))
  | Set_proj (a, i, x, e) -> (
    match type_of_atom p env a with
    | Types.Ttuple tys ->
      if i < 0 || i >= List.length tys then
        err "projection .%d out of bounds for %d-tuple" i (List.length tys);
      check_atom p env (List.nth tys i) x;
      check_exp p ~strict ~externs env e
    | t -> err "set-projection on non-tuple type %s" (Types.to_string t))
  | Let_load (v, t, a, i, e) ->
    check_atom p env Types.Tint i;
    (match type_of_atom p env a with
    | Types.Tptr telt ->
      if not (Types.equal t telt) then
        err "load has type %s, annotated %s" (Types.to_string telt)
          (Types.to_string t)
    | Types.Traw ->
      if not (Types.equal t Types.Tint) then
        err "raw load has type int, annotated %s" (Types.to_string t)
    | t -> err "load from non-array type %s" (Types.to_string t));
    check_exp p ~strict ~externs (Var.Map.add v t env) e
  | Store (a, i, x, e) ->
    check_atom p env Types.Tint i;
    (match type_of_atom p env a with
    | Types.Tptr telt -> check_atom p env telt x
    | Types.Traw -> check_atom p env Types.Tint x
    | t -> err "store to non-array type %s" (Types.to_string t));
    check_exp p ~strict ~externs env e
  | Let_ext (v, t, name, args, e) ->
    let arg_tys = List.map (type_of_atom p env) args in
    (match externs name with
    | Some (want_args, want_ret) ->
      if List.length want_args <> List.length arg_tys then
        err "extern %s: arity mismatch (%d parameters, %d arguments)" name
          (List.length want_args) (List.length arg_tys)
      else
        List.iteri
          (fun i (want, got) ->
            if not (Types.equal want got) then
              err "extern %s: argument %d has type %s, expected %s" name i
                (Types.to_string got) (Types.to_string want))
          (List.combine want_args arg_tys);
      if not (Types.equal t want_ret) then
        err "extern %s returns %s, annotated %s" name
          (Types.to_string want_ret) (Types.to_string t)
    | None -> if strict then err "unknown extern %s in strict mode" name);
    check_exp p ~strict ~externs (Var.Map.add v t env) e
  | If (a, e1, e2) ->
    check_atom p env Types.Tbool a;
    check_exp p ~strict ~externs env e1;
    check_exp p ~strict ~externs env e2
  | Switch (a, cases, default) ->
    (match type_of_atom p env a with
    | Types.Tint -> ()
    | Types.Tenum card ->
      List.iter
        (fun (n, _) ->
          if n < 0 || n >= card then
            err "switch case %d out of enum range [0,%d)" n card)
        cases
    | t -> err "switch on non-integer type %s" (Types.to_string t));
    List.iter (fun (_, e) -> check_exp p ~strict ~externs env e) cases;
    check_exp p ~strict ~externs env default
  | Call (f, args) ->
    check_fun_atom p env f (List.map (type_of_atom p env) args) "tail call"
  | Exit a -> check_atom p env Types.Tint a
  | Migrate (_, dst, f, args) ->
    check_atom p env Types.Traw dst;
    check_fun_atom p env f (List.map (type_of_atom p env) args) "migrate"
  | Speculate (f, args) ->
    let arg_tys = List.map (type_of_atom p env) args in
    check_fun_atom p env f (Types.Tint :: arg_tys) "speculate"
  | Commit (l, f, args) ->
    check_atom p env Types.Tint l;
    check_fun_atom p env f (List.map (type_of_atom p env) args) "commit"
  | Rollback (l, c) ->
    check_atom p env Types.Tint l;
    check_atom p env Types.Tint c

let check_fundef p ~strict ~externs fd =
  let env =
    List.fold_left
      (fun env (v, t) ->
        if Var.Map.mem v env then
          err "function %s: duplicate parameter %s" fd.f_name (Var.to_string v)
        else Var.Map.add v t env)
      Var.Map.empty fd.f_params
  in
  try check_exp p ~strict ~externs env fd.f_body
  with Type_error msg -> err "in function %s: %s" fd.f_name msg

let no_externs : extern_lookup = fun _ -> None

let check_program ?(strict = false) ?(externs = no_externs) p =
  match
    let main = fun_exn p p.p_main in
    if main.f_params <> [] then err "main function %s takes parameters"
        p.p_main;
    iter_funs (check_fundef p ~strict ~externs) p
  with
  | () -> Ok ()
  | exception Type_error msg -> Error msg

let well_typed ?strict ?externs p =
  match check_program ?strict ?externs p with Ok () -> true | Error _ -> false

let check_exn ?strict ?externs p =
  match check_program ?strict ?externs p with
  | Ok () -> ()
  | Error msg -> raise (Type_error msg)
