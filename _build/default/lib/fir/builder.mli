(** A combinator DSL for constructing FIR programs from OCaml.

    Every binding combinator takes its continuation last and passes the
    freshly bound variable to it as an atom, mirroring the CPS structure
    of the FIR itself.  Used by the test suites and benches. *)

open Ast

type k = atom -> exp

(** {2 Atoms} *)

val int : int -> atom
val float : float -> atom
val bool : bool -> atom
val unit : atom
val enum : int -> int -> atom
val fn : string -> atom
val nil : Types.ty -> atom

(** {2 Bindings} *)

val atom : ?name:string -> Types.ty -> atom -> k -> exp
val any : ?name:string -> atom -> k -> exp
(** Upcast: bind any value at type [Tany]. *)

val cast : ?name:string -> Types.ty -> atom -> k -> exp
(** Checked downcast from [Tany]. *)

val unop : ?name:string -> Types.ty -> unop -> atom -> k -> exp
val binop : ?name:string -> Types.ty -> binop -> atom -> atom -> k -> exp
val tuple : ?name:string -> (Types.ty * atom) list -> k -> exp
val array : ?name:string -> Types.ty -> size:atom -> init:atom -> k -> exp
val string : ?name:string -> string -> k -> exp
val proj : ?name:string -> Types.ty -> atom -> int -> k -> exp
val set_proj : atom -> int -> atom -> exp -> exp
val load : ?name:string -> Types.ty -> atom -> atom -> k -> exp
val store : atom -> atom -> atom -> exp -> exp
val ext : ?name:string -> Types.ty -> string -> atom list -> k -> exp

(** {2 Control} *)

val if_ : atom -> exp -> exp -> exp
val switch : atom -> (int * exp) list -> exp -> exp
val call : atom -> atom list -> exp
val callf : string -> atom list -> exp
val exit_ : atom -> exp
val migrate : label:int -> atom -> atom -> atom list -> exp
val speculate : atom -> atom list -> exp
val commit : atom -> atom -> atom list -> exp
val rollback : atom -> atom -> exp

(** {2 Integer shorthands} *)

val add : atom -> atom -> k -> exp
val sub : atom -> atom -> k -> exp
val mul : atom -> atom -> k -> exp
val div : atom -> atom -> k -> exp
val rem : atom -> atom -> k -> exp
val lt : atom -> atom -> k -> exp
val le : atom -> atom -> k -> exp
val gt : atom -> atom -> k -> exp
val ge : atom -> atom -> k -> exp
val eq : atom -> atom -> k -> exp
val ne : atom -> atom -> k -> exp

(** {2 Programs} *)

val func : string -> (string * Types.ty) list -> (atom list -> exp) -> fundef
val prog : ?main:string -> fundef list -> program

val for_loop :
  name:string -> lo:atom -> hi:atom -> state_tys:Types.ty list ->
  state:atom list ->
  body:(atom -> atom list -> (atom list -> exp) -> exp) ->
  after:(atom list -> exp) ->
  fundef * exp
(** The recursive-function encoding of
    [for (i = lo; i < hi; i++) body], threading an accumulator list. *)
