(* Runtime values.

   Every cell in the heap, every register, and every continuation argument
   holds one of these.  The crucial property (paper, Section 4.1.1): base
   pointers are NEVER stored directly — [Vptr (index, offset)] carries a
   pointer-table index, so relocating a block only updates the pointer
   table, never the heap contents.  [Vfun] likewise refers to the function
   table by index.  This is what makes heap images byte-identical across
   relocation, garbage collection, and migration. *)

type t =
  | Vunit
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Venum of int * int (* cardinality, value *)
  | Vptr of int * int (* pointer-table index, cell offset *)
  | Vfun of int (* function-table index *)

let equal a b =
  match a, b with
  | Vunit, Vunit -> true
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Vbool x, Vbool y -> x = y
  | Venum (c1, v1), Venum (c2, v2) -> c1 = c2 && v1 = v2
  | Vptr (i1, o1), Vptr (i2, o2) -> i1 = i2 && o1 = o2
  | Vfun f1, Vfun f2 -> f1 = f2
  | (Vunit | Vint _ | Vfloat _ | Vbool _ | Venum _ | Vptr _ | Vfun _), _ ->
    false

let pp fmt = function
  | Vunit -> Format.pp_print_string fmt "()"
  | Vint n -> Format.pp_print_int fmt n
  | Vfloat f -> Format.fprintf fmt "%g" f
  | Vbool b -> Format.pp_print_bool fmt b
  | Venum (c, v) -> Format.fprintf fmt "enum[%d]{%d}" c v
  | Vptr (i, o) -> Format.fprintf fmt "<ptr %d+%d>" i o
  | Vfun f -> Format.fprintf fmt "<fun %d>" f

let to_string v = Format.asprintf "%a" pp v

let is_pointer = function
  | Vptr _ -> true
  | Vunit | Vint _ | Vfloat _ | Vbool _ | Venum _ | Vfun _ -> false

(* Pointer-table index of a value, if it is a reference. *)
let pointer_index = function
  | Vptr (i, _) -> Some i
  | Vunit | Vint _ | Vfloat _ | Vbool _ | Venum _ | Vfun _ -> None
