(* The pointer table (paper, Section 4.1.1).

   All heap blocks are tracked by the pointer table.  Every valid block has
   an entry; every non-free entry points to a valid block.  Heap cells and
   registers refer to blocks exclusively through table indices, which is
   what enables relocation (compaction, migration) and speculation
   (copy-on-write retargeting) without rewriting the heap.

   Reading an index [i] from the heap validates it exactly as the paper
   describes: [i] is checked against the table size, and the entry is
   checked to be non-free.  Both checks are in [get]. *)

exception Invalid_pointer of string

let free_marker = -1

type t = {
  mutable entries : int array; (* index -> block address, or free_marker *)
  mutable high : int; (* indices in [0, high) have been issued *)
  mutable free_list : int list; (* freed indices available for reuse *)
  mutable live : int;
}

let create ?(initial_capacity = 64) () =
  {
    entries = Array.make (max 1 initial_capacity) free_marker;
    high = 0;
    free_list = [];
    live = 0;
  }

let size t = t.high
let live_count t = t.live
let capacity t = Array.length t.entries

let grow t =
  let cap = Array.length t.entries in
  let entries = Array.make (2 * cap) free_marker in
  Array.blit t.entries 0 entries 0 cap;
  t.entries <- entries

(* Allocate an entry for a block at [addr]; returns the index.  Freed
   indices are reused first, keeping the table dense. *)
let alloc t addr =
  match t.free_list with
  | idx :: rest ->
    t.free_list <- rest;
    t.entries.(idx) <- addr;
    t.live <- t.live + 1;
    idx
  | [] ->
    if t.high >= Array.length t.entries then grow t;
    let idx = t.high in
    t.high <- t.high + 1;
    t.entries.(idx) <- addr;
    t.live <- t.live + 1;
    idx

(* The two-step validation of the paper: index within table size, entry not
   free.  Every heap-pointer dereference in the interpreter, the emulator,
   and the unpacker goes through here. *)
let get t idx =
  if idx < 0 || idx >= t.high then
    raise
      (Invalid_pointer
         (Printf.sprintf "index %d out of table bounds [0,%d)" idx t.high));
  let addr = t.entries.(idx) in
  if addr = free_marker then
    raise (Invalid_pointer (Printf.sprintf "index %d refers to a free entry" idx));
  addr

let is_valid t idx = idx >= 0 && idx < t.high && t.entries.(idx) <> free_marker

(* Retarget an entry: used by the garbage collector after compaction and by
   the speculation engine for copy-on-write and rollback. *)
let set t idx addr =
  if idx < 0 || idx >= t.high then
    raise (Invalid_pointer (Printf.sprintf "set: index %d out of bounds" idx));
  if t.entries.(idx) = free_marker then
    raise (Invalid_pointer (Printf.sprintf "set: index %d is free" idx));
  t.entries.(idx) <- addr

let free t idx =
  if is_valid t idx then begin
    t.entries.(idx) <- free_marker;
    t.free_list <- idx :: t.free_list;
    t.live <- t.live - 1
  end

let iter_live f t =
  for idx = 0 to t.high - 1 do
    let addr = t.entries.(idx) in
    if addr <> free_marker then f idx addr
  done

(* Snapshot / restore of the full entry array, used by the wire codec.  The
   snapshot preserves index order, which migration must maintain (paper,
   Section 4.2.2: "migration must be careful to preserve order in the
   pointer and function tables"). *)
let snapshot t = Array.sub t.entries 0 t.high

let restore entries =
  let high = Array.length entries in
  let t =
    {
      entries = Array.copy entries;
      high;
      free_list = [];
      live = 0;
    }
  in
  (* rebuild the free list in ascending order for determinism *)
  for idx = high - 1 downto 0 do
    if entries.(idx) = free_marker then t.free_list <- idx :: t.free_list
    else t.live <- t.live + 1
  done;
  t
