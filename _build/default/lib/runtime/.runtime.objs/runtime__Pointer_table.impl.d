lib/runtime/pointer_table.ml: Array Printf
