lib/runtime/heap.ml: Array Char Hashtbl List Pointer_table Printf String Value
