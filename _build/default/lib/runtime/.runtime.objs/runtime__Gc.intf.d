lib/runtime/gc.mli: Hashtbl Heap Value
