lib/runtime/value.ml: Format Int64
