lib/runtime/heap.mli: Hashtbl Pointer_table Value
