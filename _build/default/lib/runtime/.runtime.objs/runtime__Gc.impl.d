lib/runtime/gc.ml: Array Hashtbl Heap List Pointer_table Value
