lib/runtime/function_table.ml: Array Hashtbl List Printf String
