lib/runtime/function_table.mli:
