lib/runtime/pointer_table.mli:
