lib/runtime/value.mli: Format
