(** The function table (paper, Section 4.1): an entry for every valid
    higher-order function.  {!Value.Vfun} carries an index into this
    table.  Construction from a program's function set is deterministic
    (sorted by name) so identical programs number identically, and
    migration ships the name list verbatim to preserve index order. *)

type t

exception Invalid_function of string

val of_names : string list -> t
(** Table with the given names in the given order.
    @raise Invalid_function on duplicates. *)

val of_program_names : string list -> t
(** Deterministic construction: names are sorted before numbering. *)

val count : t -> int

val name : t -> int -> string
(** @raise Invalid_function if the index is out of range. *)

val index : t -> string -> int
(** @raise Invalid_function if the name is unknown. *)

val index_opt : t -> string -> int option
val is_valid : t -> int -> bool
val names : t -> string list
