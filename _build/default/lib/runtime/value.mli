(** Runtime values: the contents of heap cells, registers and continuation
    arguments.

    The crucial property (paper, Section 4.1.1): base pointers are NEVER
    stored — {!Vptr} carries a pointer-table index plus an offset, and
    {!Vfun} a function-table index, so relocating a block or migrating the
    whole heap never rewrites cell contents. *)

type t =
  | Vunit
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Venum of int * int  (** cardinality, value *)
  | Vptr of int * int  (** pointer-table index, cell offset *)
  | Vfun of int  (** function-table index *)

val equal : t -> t -> bool
(** Structural equality; floats compare by bit pattern (NaN = NaN). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_pointer : t -> bool
(** [is_pointer v] is [true] exactly for {!Vptr} values. *)

val pointer_index : t -> int option
(** The pointer-table index of a reference value, if any. *)
