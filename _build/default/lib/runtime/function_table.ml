(* The function table (paper, Section 4.1).

   Contains an entry for every valid higher-order function; [Value.Vfun]
   carries an index into this table.  The table is built deterministically
   (sorted by function name) from the FIR program so that the same program
   always yields the same numbering, and migration preserves index order by
   shipping the name list verbatim. *)

exception Invalid_function of string

type t = {
  names : string array;
  by_name : (string, int) Hashtbl.t;
}

let of_names names =
  let arr = Array.of_list names in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem by_name name then
        raise (Invalid_function ("duplicate function name " ^ name));
      Hashtbl.add by_name name i)
    arr;
  { names = arr; by_name }

(* Deterministic construction from a program's function set. *)
let of_program_names names = of_names (List.sort String.compare names)

let count t = Array.length t.names

let name t idx =
  if idx < 0 || idx >= Array.length t.names then
    raise
      (Invalid_function
         (Printf.sprintf "function index %d out of bounds [0,%d)" idx
            (Array.length t.names)))
  else t.names.(idx)

let index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise (Invalid_function ("unknown function " ^ name))

let index_opt t name = Hashtbl.find_opt t.by_name name
let is_valid t idx = idx >= 0 && idx < Array.length t.names
let names t = Array.to_list t.names
