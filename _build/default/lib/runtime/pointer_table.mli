(** The pointer table (paper, Section 4.1.1).

    Every valid heap block has exactly one entry; every non-free entry
    points to a valid block.  Heap cells and registers refer to blocks
    exclusively through table indices, which is what makes relocation
    (compaction, migration) and speculation (copy-on-write retargeting)
    free of heap rewrites.

    Dereferencing validates in two steps, exactly as the paper describes:
    the index is checked against the table size, and the entry is checked
    to be non-free. *)

type t

exception Invalid_pointer of string

val free_marker : int
(** The address value marking a free entry ([-1]). *)

val create : ?initial_capacity:int -> unit -> t

val alloc : t -> int -> int
(** [alloc t addr] allocates an entry targeting [addr] and returns its
    index.  Freed indices are reused first. *)

val get : t -> int -> int
(** [get t idx] returns the block address of [idx], applying the two
    validation checks.
    @raise Invalid_pointer on an out-of-range index or a free entry. *)

val set : t -> int -> int -> unit
(** Retarget a live entry (garbage-collector relocation, copy-on-write,
    speculation rollback).
    @raise Invalid_pointer if the entry is out of range or free. *)

val free : t -> int -> unit
(** Release an entry for reuse; no-op on an already-free entry. *)

val is_valid : t -> int -> bool
val size : t -> int  (** Indices issued so far (table size for bounds). *)

val live_count : t -> int
val capacity : t -> int
val iter_live : (int -> int -> unit) -> t -> unit

val snapshot : t -> int array
(** Entry array in index order — migration must preserve order in the
    pointer table (paper, Section 4.2.2). *)

val restore : int array -> t
(** Rebuild a table from a snapshot, reconstructing the free list. *)
