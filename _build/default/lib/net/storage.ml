(* Reliable shared storage.

   Stands in for the paper's "NFS mount point visible across the entire
   cluster" that provides the reliable distributed storage medium needed
   for real fault tolerance (Section 2): checkpoint files written here
   survive any node failure.  Reads and writes are charged network
   transfer time through the simulated network. *)

type t = {
  files : (string, string) Hashtbl.t;
  net : Simnet.t;
  mutable writes : int;
  mutable reads : int;
  mutable bytes_written : int;
}

let create net =
  { files = Hashtbl.create 16; net; writes = 0; reads = 0; bytes_written = 0 }

(* Returns the simulated seconds the operation took. *)
let write t path data =
  Hashtbl.replace t.files path data;
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + String.length data;
  Simnet.record_transfer t.net (String.length data);
  Simnet.transfer_seconds t.net (String.length data)

let read t path =
  match Hashtbl.find_opt t.files path with
  | Some data ->
    t.reads <- t.reads + 1;
    Simnet.record_transfer t.net (String.length data);
    Some (data, Simnet.transfer_seconds t.net (String.length data))
  | None -> None

let exists t path = Hashtbl.mem t.files path
let remove t path = Hashtbl.remove t.files path
let list t = Hashtbl.fold (fun path _ acc -> path :: acc) t.files []
let size t path = Option.map String.length (Hashtbl.find_opt t.files path)
