(* The simulated cluster network.

   Stands in for the paper's testbed interconnect (100 Mbps Ethernet,
   Section 5) with a deterministic cost model: a TCP-like connection setup
   charge, a propagation latency, and a bandwidth term proportional to the
   payload.  The migration experiments (E1a/E1b) report the transfer
   component of migration through this model, so the paper's observed
   fractions (~10 % of FIR migration, ~30 % of binary migration) are a
   function of image size and recompilation cost rather than hard-coded.

   The network also owns the simulated clock.  Time is advanced by the
   cluster scheduler; message deliveries are timestamped against it. *)

type t = {
  mutable now : float; (* simulated seconds *)
  bandwidth_bps : float;
  latency_s : float; (* one-way propagation *)
  connect_s : float; (* connection establishment *)
  mutable bytes_sent : int;
  mutable messages_sent : int;
  mutable transfers : int; (* bulk transfers (migrations, checkpoints) *)
}

(* Defaults match the paper's testbed scale: 100 Mbps, sub-millisecond
   LAN latency, ~1 ms TCP connection establishment. *)
let create ?(bandwidth_mbps = 100.0) ?(latency_us = 200.0)
    ?(connect_ms = 1.0) () =
  {
    now = 0.0;
    bandwidth_bps = bandwidth_mbps *. 1e6;
    latency_s = latency_us *. 1e-6;
    connect_s = connect_ms *. 1e-3;
    bytes_sent = 0;
    messages_sent = 0;
    transfers = 0;
  }

let now t = t.now
let advance t dt = if dt > 0.0 then t.now <- t.now +. dt
let advance_to t time = if time > t.now then t.now <- time

(* Cost of a bulk transfer (new connection): setup + latency + serialization
   onto the wire. *)
let transfer_seconds t bytes =
  t.connect_s +. t.latency_s +. (float_of_int (8 * bytes) /. t.bandwidth_bps)

(* Cost of a small message on an established channel: latency + wire time. *)
let message_seconds t bytes =
  t.latency_s +. (float_of_int (8 * bytes) /. t.bandwidth_bps)

let record_transfer t bytes =
  t.bytes_sent <- t.bytes_sent + bytes;
  t.transfers <- t.transfers + 1

let record_message t bytes =
  t.bytes_sent <- t.bytes_sent + bytes;
  t.messages_sent <- t.messages_sent + 1
