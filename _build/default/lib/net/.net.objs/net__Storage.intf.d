lib/net/storage.mli: Simnet
