lib/net/simnet.mli:
