lib/net/mpi.mli: Hashtbl Runtime Value
