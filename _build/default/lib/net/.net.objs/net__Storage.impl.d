lib/net/storage.ml: Hashtbl Option Simnet String
