lib/net/cluster.mli: Arch Emulator Fir Migrate Mpi Process Simnet Storage Vm
