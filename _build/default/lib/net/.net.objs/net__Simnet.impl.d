lib/net/simnet.ml:
