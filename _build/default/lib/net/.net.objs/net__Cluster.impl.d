lib/net/cluster.ml: Arch Array Bytes Char Codegen Emulator Extern Fir Hashtbl Heap Interp List Migrate Mpi Option Printf Process Random Runtime Simnet Spec Storage String Value Vm
