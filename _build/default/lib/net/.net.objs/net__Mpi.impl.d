lib/net/mpi.ml: Hashtbl List Runtime Value
