(* The customized message-passing interface used by distributed MCC
   applications (paper, Section 2: border exchange "done using a
   customized message passing interface").

   Processes address each other by RANK (stable across migration and
   resurrection), not pid.  Payloads are copied by value between heaps —
   heaps never share references, so migration of either end never
   invalidates a message.

   Speculation join: a message sent from inside an uncommitted speculation
   carries the sending level's identity.  A receiver that consumes such a
   message becomes dependent on that speculation — if the sender rolls
   back, the receiver must roll back too (the paper's relaxation of the
   transactional Isolation property).  The cluster maintains the
   dependency registry and performs the cascade.

   Receive results (returned to FIR code from msg_try_recv):
   - n >= 0   : n cells copied into the buffer
   - MSG_NONE : nothing available yet (poll again / park)
   - MSG_ROLL : the peer failed or rolled back; the caller is expected to
                abort its current speculation and retry (Figure 2). *)

open Runtime

let msg_none = -1
let msg_roll = -2

type message = {
  msg_src_rank : int;
  msg_src_pid : int;
  msg_tag : int;
  msg_payload : Value.t array;
  msg_deliver_at : float; (* simulated arrival time *)
  msg_spec : (int * int) option; (* (sender pid, sender level unique id) *)
}

type mailbox = {
  mutable queue : message list; (* oldest first *)
  (* ranks whose failure/rollback the owner has not yet observed *)
  roll_notices : (int, unit) Hashtbl.t;
}

let create_mailbox () = { queue = []; roll_notices = Hashtbl.create 4 }

let enqueue mbox msg = mbox.queue <- mbox.queue @ [ msg ]

let post_roll_notice mbox ~src_rank =
  Hashtbl.replace mbox.roll_notices src_rank ()

let clear_roll_notice mbox ~src_rank = Hashtbl.remove mbox.roll_notices src_rank

let has_roll_notice mbox ~src_rank = Hashtbl.mem mbox.roll_notices src_rank

(* Take the first delivered message matching (src_rank, tag).  A pending
   roll notice from that rank takes priority and is consumed. *)
type recv_result =
  | Received of message
  | Roll
  | None_yet

let try_recv mbox ~now ~src_rank ~tag =
  if has_roll_notice mbox ~src_rank then begin
    clear_roll_notice mbox ~src_rank;
    Roll
  end
  else
    let rec split acc = function
      | [] -> None_yet
      | m :: rest ->
        if
          m.msg_src_rank = src_rank && m.msg_tag = tag
          && m.msg_deliver_at <= now
        then begin
          mbox.queue <- List.rev_append acc rest;
          Received m
        end
        else split (m :: acc) rest
    in
    split [] mbox.queue

(* Discard queued messages that originated from any of the given
   speculation level uids (used when the sender rolls back: its
   speculative messages must be unsent). *)
let discard_speculative mbox ~uids ~sender_pid =
  let dropped = ref 0 in
  mbox.queue <-
    List.filter
      (fun m ->
        match m.msg_spec with
        | Some (pid, uid) when pid = sender_pid && List.mem uid uids ->
          incr dropped;
          false
        | Some _ | None -> true)
      mbox.queue;
  !dropped

(* Earliest pending delivery time, for the scheduler's idle-time skip. *)
let next_delivery mbox =
  List.fold_left
    (fun acc m ->
      match acc with
      | None -> Some m.msg_deliver_at
      | Some t -> Some (min t m.msg_deliver_at))
    None mbox.queue

let pending mbox = List.length mbox.queue
