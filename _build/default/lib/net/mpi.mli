(** The customized message-passing interface used by distributed MCC
    applications (paper, Section 2).

    Processes address each other by RANK; payloads are copied by value
    between heaps.  A message sent from inside an uncommitted speculation
    carries the sending level's identity — a receiver that consumes it
    joins that speculation (the paper's relaxation of Isolation), and the
    cluster rolls them back together.

    Receive results surfaced to FIR code: [n >= 0] cells copied,
    {!msg_none} (nothing yet), or {!msg_roll} (the peer failed or rolled
    back: abort your speculation and retry, as in Figure 2). *)

open Runtime

val msg_none : int
(** The "nothing available" receive code (-1). *)

val msg_roll : int
(** The MSG_ROLL receive code (-2). *)

type message = {
  msg_src_rank : int;
  msg_src_pid : int;
  msg_tag : int;
  msg_payload : Value.t array;
  msg_deliver_at : float;  (** simulated arrival time *)
  msg_spec : (int * int) option;
      (** (sender pid, sender level unique id) when speculative *)
}

type mailbox = {
  mutable queue : message list;  (** oldest first *)
  roll_notices : (int, unit) Hashtbl.t;
      (** source ranks whose failure/rollback is not yet observed *)
}

val create_mailbox : unit -> mailbox
val enqueue : mailbox -> message -> unit
val post_roll_notice : mailbox -> src_rank:int -> unit
val clear_roll_notice : mailbox -> src_rank:int -> unit
val has_roll_notice : mailbox -> src_rank:int -> bool

type recv_result = Received of message | Roll | None_yet

val try_recv : mailbox -> now:float -> src_rank:int -> tag:int -> recv_result
(** First delivered message matching (src, tag); a pending roll notice
    from that source takes priority and is consumed. *)

val discard_speculative : mailbox -> uids:int list -> sender_pid:int -> int
(** Drop queued messages originating from the given speculation levels
    (the sender rolled back: its speculative messages are unsent).
    Returns the number dropped. *)

val next_delivery : mailbox -> float option
val pending : mailbox -> int
