(** Reliable shared storage — the paper's "NFS mount point visible across
    the entire cluster" that checkpoint files survive node failures on.
    Operations are charged network transfer time. *)

type t

val create : Simnet.t -> t

val write : t -> string -> string -> float
(** [write t path data] stores [data] and returns the simulated seconds
    the write took. *)

val read : t -> string -> (string * float) option
(** Contents and simulated read time, or [None]. *)

val exists : t -> string -> bool
val remove : t -> string -> unit
val list : t -> string list
val size : t -> string -> int option
