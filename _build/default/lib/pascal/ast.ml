(* Mini-Pascal abstract syntax.

   The third front-end (paper, Section 3: MCC compiles C, Pascal, ML and
   Java): a classic Pascal subset — integer/real/boolean, static arrays,
   value parameters, function-name result assignment, if/while/for,
   write/writeln — plus the MCC primitives speculate/commit/abort/migrate
   as predefined routines.

   Subset notes (documented deviations):
   - program-level variables are visible only in the main block (nested
     routines do not capture globals);
   - no nested routines, records, sets, or pointers;
   - array bounds are [0 .. N-1] (lower bound 0). *)

type pty =
  | Pinteger
  | Preal
  | Pboolean
  | Parray of int * pty (* length, element type — static, 0-based *)
  | Popen_array of pty (* open array parameter *)

let rec pty_to_string = function
  | Pinteger -> "integer"
  | Preal -> "real"
  | Pboolean -> "boolean"
  | Parray (n, t) -> Printf.sprintf "array[0..%d] of %s" (n - 1) (pty_to_string t)
  | Popen_array t -> Printf.sprintf "array of %s" (pty_to_string t)

type pos = { line : int; col : int }

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Eint of int
  | Ereal of float
  | Ebool of bool
  | Estring of string (* only as write/writeln/migrate arguments *)
  | Evar of string
  | Eindex of string * expr
  | Ebinop of string * expr * expr (* + - * / div mod = <> < <= > >= and or *)
  | Eunop of string * expr (* - not *)
  | Ecall of string * expr list

type stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | Sassign of string * expr
  | Sindex_assign of string * expr * expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sfor of string * expr * [ `To | `Downto ] * expr * stmt
  | Scompound of stmt list
  | Scall of string * expr list
  | Swrite of bool * expr list (* newline?, arguments *)

type vardecl = { vd_names : string list; vd_ty : pty; vd_pos : pos }

type routine = {
  r_name : string;
  r_params : (string * pty) list;
  r_result : pty option; (* None = procedure *)
  r_vars : vardecl list;
  r_body : stmt;
  r_pos : pos;
}

type program = {
  p_name : string;
  p_vars : vardecl list;
  p_routines : routine list;
  p_body : stmt;
}
