(** The mini-Pascal compiler driver: source -> Pascal AST -> mini-C AST ->
    verified FIR.

    The fourth-language demonstration (paper, Section 3: MCC compiles C,
    Pascal, ML and Java): Pascal programs — with the MCC primitives
    [speculate]/[commit]/[abort]/[migrate] as predefined routines — run
    on the same runtime and migrate through the same machinery as the
    other front-ends. *)

type error = {
  err_phase : [ `Lex | `Parse | `Translate | `C ];
  err_msg : string;
}

val error_to_string : error -> string
val compile : ?optimize:bool -> string -> (Fir.Ast.program, error) result
val compile_exn : ?optimize:bool -> string -> Fir.Ast.program
