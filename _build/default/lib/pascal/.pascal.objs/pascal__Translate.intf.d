lib/pascal/translate.mli: Ast Minic
