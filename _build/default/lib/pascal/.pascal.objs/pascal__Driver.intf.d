lib/pascal/driver.mli: Fir
