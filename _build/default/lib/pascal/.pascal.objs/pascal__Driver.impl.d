lib/pascal/driver.ml: Lexer Minic Parser Printf String Translate
