lib/pascal/ast.ml: Printf
