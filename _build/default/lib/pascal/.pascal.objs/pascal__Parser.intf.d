lib/pascal/parser.mli: Ast
