lib/pascal/lexer.mli: Ast
