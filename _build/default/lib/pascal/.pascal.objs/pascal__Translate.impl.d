lib/pascal/translate.ml: Ast Hashtbl List Minic Printf String
