lib/pascal/lexer.ml: Ast Buffer List Printf String
