(* Mini-Pascal -> mini-C translation.

   The Pascal front-end reuses the C pipeline below the surface syntax:
   it types the Pascal program (inserting the integer->real promotions
   Pascal performs implicitly), translates to the mini-C AST, and lets
   Minic.Typecheck/Lower produce the FIR.  This mirrors the MCC
   architecture: many front-ends, one type-safe intermediate
   representation (paper, Section 3).

   Pascal-specific rules handled here:
   - [f := expr] inside function [f] assigns the result (lowered to a
     hidden local returned at the end);
   - a bare identifier naming a zero-parameter routine is a call;
   - [/] always yields real (operands promoted); [div]/[mod] are integer;
   - [and]/[or]/[not] are boolean;
   - static arrays become heap allocations of their element type;
   - [halt(n)] in the main block sets the process exit code;
   - the MCC primitives speculate/commit/abort/migrate and the runtime
     services (writeln, random, trunc, sqrt, work_us) are predefined. *)

open Ast
module C = Minic.Ast

exception Error of string

let err pos fmt =
  Printf.ksprintf
    (fun s -> raise (Error (Printf.sprintf "%d:%d: %s" pos.line pos.col s)))
    fmt

let result_var = "$result"

let rec cty_of_pty = function
  | Pinteger -> C.Cint
  | Preal -> C.Cfloat
  | Pboolean -> C.Cint
  | Parray (_, t) | Popen_array t -> C.Cptr (cty_of_pty t)

(* value type of an expression, in Pascal terms (arrays never appear as
   expression values except through indexing) *)
type vty = Vint | Vreal | Vbool | Vstring | Varray of int option * pty

let vty_of_pty = function
  | Pinteger -> Vint
  | Preal -> Vreal
  | Pboolean -> Vbool
  | Parray (n, t) -> Varray (Some n, t)
  | Popen_array t -> Varray (None, t)

let vty_to_string = function
  | Vint -> "integer"
  | Vreal -> "real"
  | Vbool -> "boolean"
  | Vstring -> "string"
  | Varray _ -> "array"

type env = {
  vars : (string, pty) Hashtbl.t;
  routines : (string, pty list * pty option) Hashtbl.t;
  in_function : string option; (* for result assignment *)
  in_main : bool;
}

let cpos (p : pos) = { C.line = p.line; col = p.col }

let cexpr pos d : C.expr = { C.e = d; epos = cpos pos }
let cstmt pos d : C.stmt = { C.s = d; spos = cpos pos }

(* promote an int-typed translated expression to real *)
let promote pos (t, e) =
  match t with
  | Vint -> Vreal, cexpr pos (C.Ecast (C.Cfloat, e))
  | _ -> t, e

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec tr_expr env (e : expr) : vty * C.expr =
  let pos = e.epos in
  match e.e with
  | Eint n -> Vint, cexpr pos (C.Eint n)
  | Ereal f -> Vreal, cexpr pos (C.Efloat f)
  | Ebool b -> Vbool, cexpr pos (C.Eint (if b then 1 else 0))
  | Estring s -> Vstring, cexpr pos (C.Estr s)
  | Evar x -> (
    match Hashtbl.find_opt env.vars x with
    | Some ty -> vty_of_pty ty, cexpr pos (C.Evar x)
    | None -> (
      (* a bare identifier naming a zero-parameter routine is a call *)
      match Hashtbl.find_opt env.routines x with
      | Some ([], Some rty) -> vty_of_pty rty, cexpr pos (C.Ecall (x, []))
      | Some ([], None) -> err pos "procedure %s used as a value" x
      | Some _ -> err pos "routine %s needs arguments" x
      | None -> tr_builtin_call env pos x []))
  | Eindex (x, idx) -> (
    match Hashtbl.find_opt env.vars x with
    | Some (Parray (_, elt) | Popen_array elt) ->
      let it, ie = tr_expr env idx in
      if it <> Vint then err idx.epos "array index must be integer";
      ( vty_of_pty elt,
        cexpr pos (C.Eindex (cexpr pos (C.Evar x), ie)) )
    | Some t -> err pos "%s is not an array (%s)" x (pty_to_string t)
    | None -> err pos "undeclared variable %s" x)
  | Eunop ("-", a) -> (
    let t, ce = tr_expr env a in
    match t with
    | Vint ->
      Vint, cexpr pos (C.Ebinop (C.Bsub, cexpr pos (C.Eint 0), ce))
    | Vreal ->
      Vreal, cexpr pos (C.Ebinop (C.Bsub, cexpr pos (C.Efloat 0.0), ce))
    | t -> err pos "unary - applied to %s" (vty_to_string t))
  | Eunop ("not", a) -> (
    let t, ce = tr_expr env a in
    match t with
    | Vbool -> Vbool, cexpr pos (C.Eunop (C.Unot, ce))
    | t -> err pos "not applied to %s" (vty_to_string t))
  | Eunop (op, _) -> err pos "unknown unary operator %s" op
  | Ebinop (op, a, b) -> tr_binop env pos op a b
  | Ecall (name, args) -> (
    match Hashtbl.find_opt env.routines name with
    | Some (ptys, rty) ->
      let cargs = tr_call_args env pos name ptys args in
      (match rty with
      | Some t -> vty_of_pty t, cexpr pos (C.Ecall (name, cargs))
      | None -> err pos "procedure %s used as a value" name)
    | None -> tr_builtin_call env pos name args)

and tr_binop env pos op a b =
  let ta, ca = tr_expr env a in
  let tb, cb = tr_expr env b in
  let arith cop =
    match ta, tb with
    | Vint, Vint -> Vint, cexpr pos (C.Ebinop (cop, ca, cb))
    | (Vreal | Vint), (Vreal | Vint) ->
      let _, ca = promote pos (ta, ca) in
      let _, cb = promote pos (tb, cb) in
      Vreal, cexpr pos (C.Ebinop (cop, ca, cb))
    | _ -> err pos "%s applied to %s and %s" op (vty_to_string ta)
             (vty_to_string tb)
  in
  let int_only cop =
    match ta, tb with
    | Vint, Vint -> Vint, cexpr pos (C.Ebinop (cop, ca, cb))
    | _ -> err pos "%s needs integer operands" op
  in
  let cmp cop =
    match ta, tb with
    | Vint, Vint -> Vbool, cexpr pos (C.Ebinop (cop, ca, cb))
    | (Vreal | Vint), (Vreal | Vint) ->
      let _, ca = promote pos (ta, ca) in
      let _, cb = promote pos (tb, cb) in
      Vbool, cexpr pos (C.Ebinop (cop, ca, cb))
    | Vbool, Vbool when cop = C.Beq || cop = C.Bne ->
      Vbool, cexpr pos (C.Ebinop (cop, ca, cb))
    | _ -> err pos "%s applied to %s and %s" op (vty_to_string ta)
             (vty_to_string tb)
  in
  let boolean cop =
    match ta, tb with
    | Vbool, Vbool -> Vbool, cexpr pos (C.Ebinop (cop, ca, cb))
    | _ -> err pos "%s needs boolean operands" op
  in
  match op with
  | "+" -> arith C.Badd
  | "-" -> arith C.Bsub
  | "*" -> arith C.Bmul
  | "/" ->
    (* Pascal real division: both operands promoted *)
    let _, ca = promote pos (ta, ca) in
    let _, cb = promote pos (tb, cb) in
    (match ta, tb with
    | (Vint | Vreal), (Vint | Vreal) ->
      Vreal, cexpr pos (C.Ebinop (C.Bdiv, ca, cb))
    | _ -> err pos "/ applied to %s and %s" (vty_to_string ta)
             (vty_to_string tb))
  | "div" -> int_only C.Bdiv
  | "mod" -> int_only C.Brem
  | "=" -> cmp C.Beq
  | "<>" -> cmp C.Bne
  | "<" -> cmp C.Blt
  | "<=" -> cmp C.Ble
  | ">" -> cmp C.Bgt
  | ">=" -> cmp C.Bge
  | "and" -> boolean C.Bland
  | "or" -> boolean C.Blor
  | op -> err pos "unknown operator %s" op

and tr_call_args env pos name ptys args =
  if List.length ptys <> List.length args then
    err pos "%s expects %d arguments, got %d" name (List.length ptys)
      (List.length args);
  List.map2
    (fun pty arg ->
      let t, ce = tr_expr env arg in
      match vty_of_pty pty, t with
      | Vreal, Vint -> snd (promote arg.epos (t, ce))
      | want, got when want = got -> ce
      | Varray (_, want_elt), Varray (_, got_elt) when want_elt = got_elt ->
        ce
      | want, got ->
        err arg.epos "%s: argument has type %s, expected %s" name
          (vty_to_string got) (vty_to_string want))
    ptys args

(* predefined functions *)
and tr_builtin_call env pos name args =
  let one () =
    match args with
    | [ a ] -> tr_expr env a
    | _ -> err pos "%s expects one argument" name
  in
  match name with
  | "speculate" ->
    if args <> [] then err pos "speculate takes no arguments";
    Vint, cexpr pos (C.Ecall ("speculate", []))
  | "spec_level" ->
    if args <> [] then err pos "spec_level takes no arguments";
    Vint, cexpr pos (C.Ecall ("spec_level", []))
  | "random" -> (
    match one () with
    | Vint, ce -> Vint, cexpr pos (C.Ecall ("rand", [ ce ]))
    | t, _ -> err pos "random expects an integer, got %s" (vty_to_string t))
  | "trunc" -> (
    match one () with
    | Vreal, ce -> Vint, cexpr pos (C.Ecast (C.Cint, ce))
    | Vint, ce -> Vint, ce
    | t, _ -> err pos "trunc expects a real, got %s" (vty_to_string t))
  | "sqrt" -> (
    match promote pos (one ()) with
    | Vreal, ce -> Vreal, cexpr pos (C.Ecall ("sqrtf", [ ce ]))
    | t, _ -> err pos "sqrt expects a real, got %s" (vty_to_string t))
  | "abs" -> (
    match one () with
    | Vreal, ce -> Vreal, cexpr pos (C.Ecall ("fabsf", [ ce ]))
    | Vint, ce ->
      (* abs(n) = if n < 0 then -n else n, with strict operand sharing
         through a helper call is overkill: n*sign trick *)
      Vint,
      cexpr pos
        (C.Ecall ("$pas_abs", [ ce ]))
    | t, _ -> err pos "abs expects a number, got %s" (vty_to_string t))
  | _ -> err pos "unknown routine %s" name

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec tr_stmt env (s : stmt) : C.stmt list =
  let pos = s.spos in
  match s.s with
  | Sassign (x, e) -> (
    (* function-result assignment? *)
    match env.in_function with
    | Some f when String.equal x f ->
      let rty =
        match Hashtbl.find_opt env.vars result_var with
        | Some t -> t
        | None -> err pos "internal: no result slot"
      in
      let t, ce = tr_expr env e in
      let ce =
        match vty_of_pty rty, t with
        | Vreal, Vint -> snd (promote pos (t, ce))
        | want, got when want = got -> ce
        | want, got ->
          err pos "assigning %s to %s result" (vty_to_string got)
            (vty_to_string want)
      in
      [ cstmt pos (C.Sassign (result_var, ce)) ]
    | _ -> (
      match Hashtbl.find_opt env.vars x with
      | None -> err pos "undeclared variable %s" x
      | Some vty_decl ->
        let t, ce = tr_expr env e in
        let ce =
          match vty_of_pty vty_decl, t with
          | Vreal, Vint -> snd (promote pos (t, ce))
          | want, got when want = got -> ce
          | want, got ->
            err pos "assigning %s to %s : %s" (vty_to_string got) x
              (vty_to_string want)
        in
        [ cstmt pos (C.Sassign (x, ce)) ]))
  | Sindex_assign (x, idx, e) -> (
    match Hashtbl.find_opt env.vars x with
    | Some (Parray (_, elt) | Popen_array elt) ->
      let it, ie = tr_expr env idx in
      if it <> Vint then err idx.epos "array index must be integer";
      let t, ce = tr_expr env e in
      let ce =
        match vty_of_pty elt, t with
        | Vreal, Vint -> snd (promote pos (t, ce))
        | want, got when want = got -> ce
        | want, got ->
          err pos "storing %s into an array of %s" (vty_to_string got)
            (vty_to_string want)
      in
      [ cstmt pos (C.Sindex_assign (cexpr pos (C.Evar x), ie, ce)) ]
    | Some _ -> err pos "%s is not an array" x
    | None -> err pos "undeclared variable %s" x)
  | Sif (c, thn, els) ->
    let t, cc = tr_expr env c in
    if t <> Vbool then err c.epos "if condition must be boolean";
    [ cstmt pos
        (C.Sif
           ( cc,
             tr_stmt env thn,
             match els with Some e -> tr_stmt env e | None -> [] )) ]
  | Swhile (c, body) ->
    let t, cc = tr_expr env c in
    if t <> Vbool then err c.epos "while condition must be boolean";
    [ cstmt pos (C.Swhile (cc, tr_stmt env body)) ]
  | Sfor (v, lo, dir, hi, body) -> (
    match Hashtbl.find_opt env.vars v with
    | Some Pinteger ->
      let tlo, clo = tr_expr env lo in
      let thi, chi = tr_expr env hi in
      if tlo <> Vint || thi <> Vint then
        err pos "for bounds must be integer";
      let cv = cexpr pos (C.Evar v) in
      let cond_op, step_op =
        match dir with `To -> C.Ble, C.Badd | `Downto -> C.Bge, C.Bsub
      in
      [ cstmt pos
          (C.Sfor
             ( Some (cstmt pos (C.Sassign (v, clo))),
               Some (cexpr pos (C.Ebinop (cond_op, cv, chi))),
               Some
                 (cstmt pos
                    (C.Sassign
                       ( v,
                         cexpr pos
                           (C.Ebinop (step_op, cv, cexpr pos (C.Eint 1))) ))),
               tr_stmt env body )) ]
    | Some _ -> err pos "for variable %s must be integer" v
    | None -> err pos "undeclared for variable %s" v)
  | Scompound stmts -> List.concat_map (tr_stmt env) stmts
  | Swrite (newline, args) ->
    let prints =
      List.map
        (fun arg ->
          let t, ce = tr_expr env arg in
          match t with
          | Vint -> cstmt pos (C.Sexpr (cexpr pos (C.Ecall ("print_int", [ ce ]))))
          | Vreal ->
            cstmt pos (C.Sexpr (cexpr pos (C.Ecall ("print_float", [ ce ]))))
          | Vbool ->
            cstmt pos (C.Sexpr (cexpr pos (C.Ecall ("print_int", [ ce ]))))
          | Vstring ->
            cstmt pos (C.Sexpr (cexpr pos (C.Ecall ("print_str", [ ce ]))))
          | Varray _ -> err arg.epos "cannot write an array")
        args
    in
    prints
    @
    if newline then
      [ cstmt pos (C.Sexpr (cexpr pos (C.Ecall ("print_nl", [])))) ]
    else []
  | Scall ("halt", args) ->
    if not env.in_main then err pos "halt is only allowed in the main block";
    let code =
      match args with
      | [] -> cexpr pos (C.Eint 0)
      | [ a ] -> (
        match tr_expr env a with
        | Vint, ce -> ce
        | t, _ -> err pos "halt expects an integer, got %s" (vty_to_string t))
      | _ -> err pos "halt expects at most one argument"
    in
    [ cstmt pos (C.Sreturn (Some code)) ]
  | Scall (("commit" | "abort") as prim, args) -> (
    match args with
    | [ a ] -> (
      match tr_expr env a with
      | Vint, ce ->
        [ cstmt pos (C.Sexpr (cexpr pos (C.Ecall (prim, [ ce ])))) ]
      | t, _ ->
        err pos "%s expects a speculation id, got %s" prim (vty_to_string t))
    | _ -> err pos "%s expects one argument" prim)
  | Scall ("migrate", args) -> (
    match args with
    | [ { e = Estring s; epos } ] ->
      [ cstmt pos
          (C.Sexpr
             (cexpr pos (C.Ecall ("migrate", [ cexpr epos (C.Estr s) ])))) ]
    | _ -> err pos "migrate expects a string literal target")
  | Scall ("work_us", args) -> (
    match args with
    | [ a ] -> (
      match tr_expr env a with
      | Vint, ce ->
        [ cstmt pos (C.Sexpr (cexpr pos (C.Ecall ("work_us", [ ce ])))) ]
      | t, _ -> err pos "work_us expects an integer, got %s" (vty_to_string t))
    | _ -> err pos "work_us expects one argument")
  | Scall (name, args) -> (
    match Hashtbl.find_opt env.routines name with
    | Some (ptys, None) ->
      let cargs = tr_call_args env pos name ptys args in
      [ cstmt pos (C.Sexpr (cexpr pos (C.Ecall (name, cargs)))) ]
    | Some (ptys, Some _) ->
      (* Pascal allows calling a function and discarding the result *)
      let cargs = tr_call_args env pos name ptys args in
      [ cstmt pos (C.Sexpr (cexpr pos (C.Ecall (name, cargs)))) ]
    | None -> err pos "unknown routine %s" name)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

(* a variable declaration becomes a C declaration; arrays allocate *)
let decl_stmts (vd : vardecl) : C.stmt list =
  let pos = cpos vd.vd_pos in
  List.map
    (fun name ->
      match vd.vd_ty with
      | Pinteger -> { C.s = C.Sdecl (C.Cint, name, None); spos = pos }
      | Preal -> { C.s = C.Sdecl (C.Cfloat, name, None); spos = pos }
      | Pboolean -> { C.s = C.Sdecl (C.Cint, name, None); spos = pos }
      | Parray (n, elt) ->
        let alloc =
          match elt with
          | Pinteger | Pboolean -> "alloc_int"
          | Preal -> "alloc_float"
          | Parray _ | Popen_array _ ->
            raise (Error "nested array types are not supported")
        in
        {
          C.s =
            C.Sdecl
              ( cty_of_pty vd.vd_ty,
                name,
                Some
                  { C.e = C.Ecall (alloc, [ { C.e = C.Eint n; epos = pos } ]);
                    epos = pos } );
          spos = pos;
        }
      | Popen_array _ ->
        raise (Error "open arrays are only allowed as parameters"))
    vd.vd_names

let bind_vars env vds =
  List.iter
    (fun vd ->
      List.iter
        (fun name ->
          if Hashtbl.mem env.vars name then
            err vd.vd_pos "duplicate declaration of %s" name;
          Hashtbl.add env.vars name vd.vd_ty)
        vd.vd_names)
    vds

(* the abs helper injected when used *)
let abs_helper pos : C.fundecl =
  let p = cpos pos in
  let e d = { C.e = d; epos = p } in
  let s d = { C.s = d; spos = p } in
  {
    C.fd_name = "$pas_abs";
    fd_ret = C.Cint;
    fd_params = [ C.Cint, "n" ];
    fd_body =
      [
        s (C.Sif
             ( e (C.Ebinop (C.Blt, e (C.Evar "n"), e (C.Eint 0))),
               [ s (C.Sreturn (Some (e (C.Ebinop (C.Bsub, e (C.Eint 0),
                                                  e (C.Evar "n")))))) ],
               [] ));
        s (C.Sreturn (Some (e (C.Evar "n"))));
      ];
    fd_pos = p;
  }

let tr_routine routines (r : routine) : C.fundecl =
  let env =
    {
      vars = Hashtbl.create 16;
      routines;
      in_function = (match r.r_result with Some _ -> Some r.r_name | None -> None);
      in_main = false;
    }
  in
  List.iter
    (fun (name, ty) ->
      if Hashtbl.mem env.vars name then
        err r.r_pos "duplicate parameter %s" name;
      Hashtbl.add env.vars name ty)
    r.r_params;
  bind_vars env r.r_vars;
  (match r.r_result with
  | Some rty -> Hashtbl.add env.vars result_var rty
  | None -> ());
  let decls = List.concat_map decl_stmts r.r_vars in
  let result_decl, result_return =
    match r.r_result with
    | Some rty ->
      let p = cpos r.r_pos in
      ( [ { C.s =
              C.Sdecl
                ( (match rty with
                  | Pinteger | Pboolean -> C.Cint
                  | Preal -> C.Cfloat
                  | Parray _ | Popen_array _ ->
                    err r.r_pos "functions cannot return arrays"),
                  result_var,
                  None );
            spos = p } ],
        [ { C.s = C.Sreturn (Some { C.e = C.Evar result_var; epos = p });
            spos = p } ] )
    | None -> [], []
  in
  let body = tr_stmt env r.r_body in
  {
    C.fd_name = r.r_name;
    fd_ret =
      (match r.r_result with
      | Some (Pinteger | Pboolean) -> C.Cint
      | Some Preal -> C.Cfloat
      | Some (Parray _ | Popen_array _) ->
        err r.r_pos "functions cannot return arrays"
      | None -> C.Cvoid);
    fd_params = List.map (fun (n, t) -> cty_of_pty t, n) r.r_params;
    fd_body = result_decl @ decls @ body @ result_return;
    fd_pos = cpos r.r_pos;
  }

let tr_program (p : program) : C.program =
  let routines = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem routines r.r_name then
        err r.r_pos "duplicate routine %s" r.r_name;
      Hashtbl.add routines r.r_name (List.map snd r.r_params, r.r_result))
    p.p_routines;
  let cfuns = List.map (tr_routine routines) p.p_routines in
  let main_env =
    {
      vars = Hashtbl.create 16;
      routines;
      in_function = None;
      in_main = true;
    }
  in
  bind_vars main_env p.p_vars;
  let pos0 = { line = 1; col = 1 } in
  let main_body =
    List.concat_map decl_stmts p.p_vars
    @ tr_stmt main_env p.p_body
    @ [ { C.s = C.Sreturn (Some { C.e = C.Eint 0; epos = cpos pos0 });
          spos = cpos pos0 } ]
  in
  let main : C.fundecl =
    {
      C.fd_name = "main";
      fd_ret = C.Cint;
      fd_params = [];
      fd_body = main_body;
      fd_pos = cpos pos0;
    }
  in
  abs_helper pos0 :: cfuns @ [ main ]
