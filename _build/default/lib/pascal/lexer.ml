(* Mini-Pascal lexer: case-insensitive keywords, (* ... *) and { ... }
   comments, '...' string literals with '' escapes. *)

exception Lex_error of string

type token =
  | Tident of string (* lower-cased *)
  | Tint of int
  | Treal of float
  | Tstring of string
  | Tkw of string
  | Tpunct of string
  | Teof

type lexed = { tok : token; tpos : Ast.pos }

let keywords =
  [ "program"; "var"; "begin"; "end"; "if"; "then"; "else"; "while"; "do";
    "for"; "to"; "downto"; "function"; "procedure"; "of"; "array"; "div";
    "mod"; "and"; "or"; "not"; "true"; "false"; "integer"; "real";
    "boolean" ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let err msg =
    raise (Lex_error (Printf.sprintf "%d:%d: %s" !line !col msg))
  in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let emit tok tpos = toks := { tok; tpos } :: !toks in
  while !i < n do
    let c = src.[!i] in
    let pos = { Ast.line = !line; col = !col } in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '{' then begin
      (* { comment } *)
      advance ();
      while !i < n && src.[!i] <> '}' do
        advance ()
      done;
      if !i >= n then err "unterminated { comment"
      else advance ()
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then err "unterminated (* comment"
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        &&
        let c = src.[!i] in
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_'
      do
        advance ()
      done;
      let word = String.lowercase_ascii (String.sub src start (!i - start)) in
      if List.mem word keywords then emit (Tkw word) pos
      else emit (Tident word) pos
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        advance ()
      done;
      (* a real needs a digit after the dot; '..' is a range *)
      if
        !i + 1 < n && src.[!i] = '.'
        && src.[!i + 1] >= '0'
        && src.[!i + 1] <= '9'
      then begin
        advance ();
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
          advance ()
        done;
        emit (Treal (float_of_string (String.sub src start (!i - start)))) pos
      end
      else emit (Tint (int_of_string (String.sub src start (!i - start)))) pos
    end
    else if c = '\'' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            advance ();
            advance ()
          end
          else begin
            advance ();
            closed := true
          end
        else begin
          Buffer.add_char buf src.[!i];
          advance ()
        end
      done;
      if not !closed then err "unterminated string";
      emit (Tstring (Buffer.contents buf)) pos
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      if List.mem two [ ":="; "<="; ">="; "<>"; ".." ] then begin
        advance ();
        advance ();
        emit (Tpunct two) pos
      end
      else if String.contains "+-*/=<>()[];,.:" c then begin
        advance ();
        emit (Tpunct (String.make 1 c)) pos
      end
      else err (Printf.sprintf "unexpected character %C" c)
    end
  done;
  List.rev ({ tok = Teof; tpos = { Ast.line = !line; col = !col } } :: !toks)

let token_to_string = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tint n -> Printf.sprintf "integer %d" n
  | Treal f -> Printf.sprintf "real %g" f
  | Tstring s -> Printf.sprintf "string %S" s
  | Tkw s -> Printf.sprintf "keyword %S" s
  | Tpunct s -> Printf.sprintf "%S" s
  | Teof -> "end of input"
