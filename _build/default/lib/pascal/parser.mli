(** Mini-Pascal recursive-descent parser. *)

exception Parse_error of string

val parse_program : string -> Ast.program
(** @raise Parse_error or {!Lexer.Lex_error} with positioned messages. *)
