(* Mini-Pascal recursive-descent parser. *)

open Ast

exception Parse_error of string

type state = { mutable toks : Lexer.lexed list }

let err pos fmt =
  Printf.ksprintf
    (fun s ->
      raise (Parse_error (Printf.sprintf "%d:%d: %s" pos.line pos.col s)))
    fmt

let peek st = match st.toks with t :: _ -> t | [] -> assert false
let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect_punct st s =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tpunct p when String.equal p s -> ()
  | tok ->
    err t.Lexer.tpos "expected %S, found %s" s (Lexer.token_to_string tok)

let expect_kw st s =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tkw k when String.equal k s -> ()
  | tok ->
    err t.Lexer.tpos "expected %S, found %s" s (Lexer.token_to_string tok)

let accept_punct st s =
  match (peek st).Lexer.tok with
  | Lexer.Tpunct p when String.equal p s ->
    advance st;
    true
  | _ -> false

let accept_kw st s =
  match (peek st).Lexer.tok with
  | Lexer.Tkw k when String.equal k s ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tident x -> x
  | tok ->
    err t.Lexer.tpos "expected an identifier, found %s"
      (Lexer.token_to_string tok)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tkw "integer" -> Pinteger
  | Lexer.Tkw "real" -> Preal
  | Lexer.Tkw "boolean" -> Pboolean
  | Lexer.Tkw "array" ->
    if accept_punct st "[" then begin
      (* array[0..N] of T — inclusive upper bound, 0-based *)
      let lo =
        match (next st).Lexer.tok with
        | Lexer.Tint n -> n
        | tok ->
          err t.Lexer.tpos "expected a bound, found %s"
            (Lexer.token_to_string tok)
      in
      expect_punct st "..";
      let hi =
        match (next st).Lexer.tok with
        | Lexer.Tint n -> n
        | tok ->
          err t.Lexer.tpos "expected a bound, found %s"
            (Lexer.token_to_string tok)
      in
      expect_punct st "]";
      expect_kw st "of";
      if lo <> 0 then err t.Lexer.tpos "array lower bound must be 0";
      if hi < lo then err t.Lexer.tpos "empty array range";
      Parray (hi + 1, parse_ty st)
    end
    else begin
      (* open array parameter: array of T *)
      expect_kw st "of";
      Popen_array (parse_ty st)
    end
  | tok ->
    err t.Lexer.tpos "expected a type, found %s" (Lexer.token_to_string tok)

(* ------------------------------------------------------------------ *)
(* Expressions: relational < additive < multiplicative < unary < atom  *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st =
  let lhs = parse_additive st in
  match (peek st).Lexer.tok with
  | Lexer.Tpunct (("=" | "<" | "<=" | ">" | ">=" | "<>") as op) ->
    let pos = (peek st).Lexer.tpos in
    advance st;
    { e = Ebinop (op, lhs, parse_additive st); epos = pos }
  | _ -> lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    let t = peek st in
    match t.Lexer.tok with
    | Lexer.Tpunct (("+" | "-") as op) ->
      advance st;
      lhs := { e = Ebinop (op, !lhs, parse_multiplicative st);
               epos = t.Lexer.tpos }
    | Lexer.Tkw "or" ->
      advance st;
      lhs := { e = Ebinop ("or", !lhs, parse_multiplicative st);
               epos = t.Lexer.tpos }
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    let t = peek st in
    match t.Lexer.tok with
    | Lexer.Tpunct (("*" | "/") as op) ->
      advance st;
      lhs := { e = Ebinop (op, !lhs, parse_unary st); epos = t.Lexer.tpos }
    | Lexer.Tkw (("div" | "mod" | "and") as op) ->
      advance st;
      lhs := { e = Ebinop (op, !lhs, parse_unary st); epos = t.Lexer.tpos }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.Tpunct "-" ->
    advance st;
    { e = Eunop ("-", parse_unary st); epos = t.Lexer.tpos }
  | Lexer.Tkw "not" ->
    advance st;
    { e = Eunop ("not", parse_unary st); epos = t.Lexer.tpos }
  | _ -> parse_atom st

and parse_atom st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tint n -> { e = Eint n; epos = t.Lexer.tpos }
  | Lexer.Treal f -> { e = Ereal f; epos = t.Lexer.tpos }
  | Lexer.Tstring s -> { e = Estring s; epos = t.Lexer.tpos }
  | Lexer.Tkw "true" -> { e = Ebool true; epos = t.Lexer.tpos }
  | Lexer.Tkw "false" -> { e = Ebool false; epos = t.Lexer.tpos }
  | Lexer.Tident x ->
    if accept_punct st "(" then begin
      let args = parse_args st in
      { e = Ecall (x, args); epos = t.Lexer.tpos }
    end
    else if accept_punct st "[" then begin
      let idx = parse_expr st in
      expect_punct st "]";
      { e = Eindex (x, idx); epos = t.Lexer.tpos }
    end
    else { e = Evar x; epos = t.Lexer.tpos }
  | Lexer.Tpunct "(" ->
    let e = parse_expr st in
    expect_punct st ")";
    e
  | tok ->
    err t.Lexer.tpos "expected an expression, found %s"
      (Lexer.token_to_string tok)

and parse_args st =
  if accept_punct st ")" then []
  else
    let rec more acc =
      let acc = parse_expr st :: acc in
      if accept_punct st "," then more acc
      else begin
        expect_punct st ")";
        List.rev acc
      end
    in
    more []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st =
  let t = peek st in
  let pos = t.Lexer.tpos in
  match t.Lexer.tok with
  | Lexer.Tkw "begin" ->
    advance st;
    let rec stmts acc =
      if accept_kw st "end" then List.rev acc
      else begin
        let s = parse_stmt st in
        if accept_punct st ";" then stmts (s :: acc)
        else begin
          expect_kw st "end";
          List.rev (s :: acc)
        end
      end
    in
    { s = Scompound (stmts []); spos = pos }
  | Lexer.Tkw "if" ->
    advance st;
    let cond = parse_expr st in
    expect_kw st "then";
    let thn = parse_stmt st in
    let els = if accept_kw st "else" then Some (parse_stmt st) else None in
    { s = Sif (cond, thn, els); spos = pos }
  | Lexer.Tkw "while" ->
    advance st;
    let cond = parse_expr st in
    expect_kw st "do";
    { s = Swhile (cond, parse_stmt st); spos = pos }
  | Lexer.Tkw "for" ->
    advance st;
    let v = expect_ident st in
    expect_punct st ":=";
    let lo = parse_expr st in
    let dir =
      if accept_kw st "to" then `To
      else begin
        expect_kw st "downto";
        `Downto
      end
    in
    let hi = parse_expr st in
    expect_kw st "do";
    { s = Sfor (v, lo, dir, hi, parse_stmt st); spos = pos }
  | Lexer.Tident name -> (
    advance st;
    match (peek st).Lexer.tok with
    | Lexer.Tpunct ":=" ->
      advance st;
      { s = Sassign (name, parse_expr st); spos = pos }
    | Lexer.Tpunct "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      expect_punct st ":=";
      { s = Sindex_assign (name, idx, parse_expr st); spos = pos }
    | Lexer.Tpunct "(" -> (
      advance st;
      let args = parse_args st in
      match name with
      | "write" -> { s = Swrite (false, args); spos = pos }
      | "writeln" -> { s = Swrite (true, args); spos = pos }
      | _ -> { s = Scall (name, args); spos = pos })
    | _ ->
      if String.equal name "writeln" then
        { s = Swrite (true, []); spos = pos }
      else { s = Scall (name, []); spos = pos })
  | tok ->
    err pos "expected a statement, found %s" (Lexer.token_to_string tok)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_var_block st =
  (* var a, b: integer; c: real; ... — ends when the next token is not an
     identifier *)
  let rec decls acc =
    match (peek st).Lexer.tok with
    | Lexer.Tident _ ->
      let pos = (peek st).Lexer.tpos in
      let rec names acc =
        let n = expect_ident st in
        if accept_punct st "," then names (n :: acc) else List.rev (n :: acc)
      in
      let vd_names = names [] in
      expect_punct st ":";
      let vd_ty = parse_ty st in
      expect_punct st ";";
      decls ({ vd_names; vd_ty; vd_pos = pos } :: acc)
    | _ -> List.rev acc
  in
  decls []

let parse_routine st =
  let pos = (peek st).Lexer.tpos in
  let is_function = accept_kw st "function" in
  if not is_function then expect_kw st "procedure";
  let name = expect_ident st in
  let params =
    if accept_punct st "(" then begin
      if accept_punct st ")" then []
      else begin
        let rec groups acc =
          let rec names acc =
            let n = expect_ident st in
            if accept_punct st "," then names (n :: acc)
            else List.rev (n :: acc)
          in
          let ns = names [] in
          expect_punct st ":";
          let ty = parse_ty st in
          let acc = acc @ List.map (fun n -> n, ty) ns in
          if accept_punct st ";" then groups acc
          else begin
            expect_punct st ")";
            acc
          end
        in
        groups []
      end
    end
    else []
  in
  let result =
    if is_function then begin
      expect_punct st ":";
      let t = parse_ty st in
      Some t
    end
    else None
  in
  expect_punct st ";";
  let vars = if accept_kw st "var" then parse_var_block st else [] in
  let body = parse_stmt st in
  expect_punct st ";";
  {
    r_name = name;
    r_params = params;
    r_result = result;
    r_vars = vars;
    r_body = body;
    r_pos = pos;
  }

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  expect_kw st "program";
  let p_name = expect_ident st in
  expect_punct st ";";
  let p_vars = if accept_kw st "var" then parse_var_block st else [] in
  let rec routines acc =
    match (peek st).Lexer.tok with
    | Lexer.Tkw ("function" | "procedure") ->
      routines (parse_routine st :: acc)
    | _ -> List.rev acc
  in
  let p_routines = routines [] in
  let p_body = parse_stmt st in
  expect_punct st ".";
  (match (peek st).Lexer.tok with
  | Lexer.Teof -> ()
  | tok ->
    err (peek st).Lexer.tpos "trailing input: %s" (Lexer.token_to_string tok));
  { p_name; p_vars; p_routines; p_body }
