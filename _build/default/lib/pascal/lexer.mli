(** Mini-Pascal lexer: case-insensitive keywords, both Pascal comment
    styles, ['...'] string literals with [''] escapes. *)

exception Lex_error of string

type token =
  | Tident of string  (** lower-cased *)
  | Tint of int
  | Treal of float
  | Tstring of string
  | Tkw of string
  | Tpunct of string
  | Teof

type lexed = { tok : token; tpos : Ast.pos }

val tokenize : string -> lexed list
val token_to_string : token -> string
