(** Mini-Pascal -> mini-C translation: types the Pascal program
    (inserting the implicit integer->real promotions), maps its
    constructs onto the mini-C AST, and reuses the C pipeline's
    typechecked CPS lowering — many front-ends, one intermediate
    representation (paper, Section 3). *)

exception Error of string

val tr_program : Ast.program -> Minic.Ast.program
(** @raise Error with a positioned message on a Pascal-level type or
    scope violation. *)
