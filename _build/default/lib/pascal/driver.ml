(* Mini-Pascal compiler driver: source -> Pascal AST -> mini-C AST ->
   verified FIR.  The heavy lifting (typechecked lowering to CPS, FIR
   verification and optimization) is shared with the mini-C pipeline. *)

type error = {
  err_phase : [ `Lex | `Parse | `Translate | `C ];
  err_msg : string;
}

let error_to_string e =
  let phase =
    match e.err_phase with
    | `Lex -> "lexical error"
    | `Parse -> "syntax error"
    | `Translate -> "error"
    | `C -> "internal translation error"
  in
  Printf.sprintf "%s: %s" phase e.err_msg

let compile ?(optimize = true) src =
  match
    let ast =
      try Parser.parse_program src with
      | Lexer.Lex_error m -> raise (Failure ("L" ^ m))
      | Parser.Parse_error m -> raise (Failure ("P" ^ m))
    in
    let cast =
      try Translate.tr_program ast
      with Translate.Error m -> raise (Failure ("T" ^ m))
    in
    match Minic.Driver.compile_ast ~optimize cast with
    | Ok fir -> fir
    | Error e -> raise (Failure ("C" ^ Minic.Driver.error_to_string e))
  with
  | fir -> Ok fir
  | exception Failure m ->
    let phase =
      match m.[0] with
      | 'L' -> `Lex
      | 'P' -> `Parse
      | 'T' -> `Translate
      | _ -> `C
    in
    Error { err_phase = phase; err_msg = String.sub m 1 (String.length m - 1) }

let compile_exn ?optimize src =
  match compile ?optimize src with
  | Ok fir -> fir
  | Error e -> failwith (error_to_string e)
