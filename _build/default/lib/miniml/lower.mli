(** Mini-ML -> FIR lowering: closure-converted CPS over a uniform boxed
    ([any]) representation, with per-function slot frames and tail-call
    optimization (self-tail recursion runs in constant space).  See the
    implementation header for the representation details. *)

exception Error of string

val lower_program : ?exit_is_int:bool -> Syntax.program -> Fir.Ast.program
(** [exit_is_int] selects whether the program's final value becomes the
    exit code (int) or is discarded (unit programs exit 0). *)
