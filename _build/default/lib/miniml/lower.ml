(* Mini-ML -> FIR lowering.

   Uses a uniform boxed representation: every ML value is a FIR [any];
   closures are heap tuples (code, environment array); continuations are
   closure-converted the same way.  Static safety comes from HM inference
   (Infer); every unboxing in the generated FIR is a checked downcast, so
   the FIR typechecker accepts migrated mini-ML images by the same rules
   as mini-C ones.

   Per-function frames are single [any] arrays indexed by compile-time
   slot numbers: parameters, captured free variables (copied from the
   closure environment at entry), let-bound names and spill temporaries
   all live there.  As with mini-C, no FIR variable is live across a
   continuation split, so whole-process capture needs no extra work. *)

open Syntax
module F = Fir.Ast
module T = Fir.Types
module B = Fir.Builder

exception Error of string

let cont_code_ty = T.Tfun [ T.Tptr T.Tany; T.Tany ]
let clo_code_ty = T.Tfun [ T.Tptr T.Tany; T.Tany; cont_code_ty; T.Tptr T.Tany ]
let clo_ty = T.Ttuple [ clo_code_ty; T.Tptr T.Tany ]

type state = {
  mutable fns : F.fundef list;
  mutable counter : int;
}

let fresh_name state prefix =
  state.counter <- state.counter + 1;
  Printf.sprintf "ml$%s%d" prefix state.counter

(* Compile-time function context: only the slot counter is mutable (slot
   indices must be unique within a frame); the NAME -> SLOT environment is
   an immutable map threaded through compilation and captured in
   continuation closures.  This matters because [reify] compiles
   continuations out of lexical order — a mutable name table would let a
   later sibling's shadowing binding corrupt the scope an earlier
   subtree's branches are compiled under. *)
module Scope = Map.Make (String)

type fctx = {
  mutable next_slot : int;
  frame_size : int;
}

type _scope = int Scope.t (* documentation alias; scopes are passed inline *)

let slot_of scope x =
  match Scope.find_opt x scope with
  | Some i -> i
  | None -> raise (Error ("internal: no slot for " ^ x))

let fresh_slot fctx =
  if fctx.next_slot >= fctx.frame_size then
    raise (Error "internal: frame overflow");
  let i = fctx.next_slot in
  fctx.next_slot <- fctx.next_slot + 1;
  i

let bind_slot fctx scope x =
  let i = fresh_slot fctx in
  i, Scope.add x i scope

let temp_slot fctx = fresh_slot fctx

(* runtime environment: the three values threaded through splits *)
type env = { k : F.atom; kenv : F.atom; frame : F.atom }

type metak = env -> F.atom -> F.exp (* continuation over a boxed value *)

(* Where does an expression's value go?  [Tail] means "return it through
   the current (k, kenv)" — crucially, a function application in tail
   position passes k/kenv straight through instead of reifying a new
   continuation closure, so ML tail recursion runs in constant space
   (and the FIR tail-call discipline is preserved end to end). *)
type cont = Tail | Meta of metak

let apply_cont cont env v =
  match cont with
  | Tail -> F.Call (env.k, [ env.kenv; v ])
  | Meta f -> f env v

(* ------------------------------------------------------------------ *)
(* AST measurements                                                    *)
(* ------------------------------------------------------------------ *)

let rec node_count = function
  | Eint _ | Ebool _ | Eunit | Evar _ -> 1
  | Elam _ -> 1 (* nested lambda bodies get their own frames *)
  | Eapp (a, b) | Ebinop (_, a, b) | Eseq (a, b) ->
    1 + node_count a + node_count b
  | Elet (_, a, b) -> 1 + node_count a + node_count b
  | Eletrec (_, _, _, b) -> 1 + node_count b
  | Eif (a, b, c) -> 1 + node_count a + node_count b + node_count c

let rec free_vars bound acc = function
  | Eint _ | Ebool _ | Eunit -> acc
  | Evar x -> if List.mem x bound || List.mem x acc then acc else x :: acc
  | Elam (x, b) -> free_vars (x :: bound) acc b
  | Eapp (a, b) | Ebinop (_, a, b) | Eseq (a, b) ->
    free_vars bound (free_vars bound acc a) b
  | Elet (x, a, b) -> free_vars (x :: bound) (free_vars bound acc a) b
  | Eletrec (f, x, fb, b) ->
    free_vars (f :: bound) (free_vars (f :: x :: bound) acc fb) b
  | Eif (a, b, c) ->
    free_vars bound (free_vars bound (free_vars bound acc a) b) c

(* ------------------------------------------------------------------ *)
(* Frame access                                                        *)
(* ------------------------------------------------------------------ *)

let frame_load env i (k : F.atom -> F.exp) =
  B.load T.Tany env.frame (B.int i) k

let frame_store env i v rest = F.Store (env.frame, F.Int i, v, rest)

(* Reify the current meta-continuation as a continuation closure:
   a function (kenv' : any ptr, r : any) that unpacks the saved
   (k, kenv, frame) triple and resumes.  Returns (name, build) where
   [build] packs the triple at the current site and passes the packed
   array to its continuation. *)
let reify state (metak : metak) =
  let name = fresh_name state "k" in
  let fd =
    B.func name
      [ "kenv", T.Tptr T.Tany; "r", T.Tany ]
      (fun atoms ->
        match atoms with
        | [ kenvp; r ] ->
          B.load T.Tany kenvp (B.int 0) (fun k_any ->
              B.cast cont_code_ty k_any (fun k ->
                  B.load T.Tany kenvp (B.int 1) (fun kk_any ->
                      B.cast (T.Tptr T.Tany) kk_any (fun kenv ->
                          B.load T.Tany kenvp (B.int 2) (fun f_any ->
                              B.cast (T.Tptr T.Tany) f_any (fun frame ->
                                  metak { k; kenv; frame } r))))))
        | _ -> raise (Error "internal: reify arity"))
  in
  state.fns <- fd :: state.fns;
  let build env (k : F.atom -> F.exp) =
    B.array T.Tany ~size:(B.int 3) ~init:F.Unit (fun packed ->
        F.Store
          ( packed, F.Int 0, env.k,
            F.Store
              ( packed, F.Int 1, env.kenv,
                F.Store (packed, F.Int 2, env.frame, k packed) ) ))
  in
  name, build

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let box_int a k = B.atom T.Tany a k
let box a k = B.atom T.Tany a k

let rec compile state fctx scope env e (cont : cont) : F.exp =
  match e with
  | Eint n -> box_int (F.Int n) (fun v -> apply_cont cont env v)
  | Ebool b -> box (F.Bool b) (fun v -> apply_cont cont env v)
  | Eunit -> box F.Unit (fun v -> apply_cont cont env v)
  | Evar x ->
    frame_load env (slot_of scope x) (fun v -> apply_cont cont env v)
  | Eseq (a, b) ->
    compile state fctx scope env a
      (Meta (fun env _ -> compile state fctx scope env b cont))
  | Elet (x, value, body) ->
    (* the binding extends the scope for the body only: the value is
       compiled under the outer scope ([x] may shadow a name it uses) *)
    compile state fctx scope env value
      (Meta
         (fun env v ->
           let sx, scope' = bind_slot fctx scope x in
           frame_store env sx v (compile state fctx scope' env body cont)))
  | Eletrec (f, x, fbody, body) ->
    let sf, scope' = bind_slot fctx scope f in
    compile_lambda state fctx scope' env ~recname:(Some f) x fbody
      (fun env clo ->
        frame_store env sf clo (compile state fctx scope' env body cont))
  | Elam (x, body) ->
    compile_lambda state fctx scope env ~recname:None x body (fun env v ->
        apply_cont cont env v)
  | Eif (c, t, e) -> (
    match cont with
    | Tail ->
      (* tail branches return directly; no join continuation is built *)
      compile state fctx scope env c
        (Meta
           (fun env vc ->
             B.cast T.Tbool vc (fun bc ->
                 F.If
                   ( bc,
                     compile state fctx scope env t Tail,
                     compile state fctx scope env e Tail ))))
    | Meta metak ->
      let join, build = reify state metak in
      (* each branch re-packs (k, kenv, frame) at its own tail: the branch
         may itself contain splits, after which the original pack would be
         out of scope *)
      let goto_join env r =
        build env (fun packed -> F.Call (F.Fun join, [ packed; r ]))
      in
      compile state fctx scope env c
        (Meta
           (fun env vc ->
             B.cast T.Tbool vc (fun bc ->
                 F.If
                   ( bc,
                     compile state fctx scope env t (Meta goto_join),
                     compile state fctx scope env e (Meta goto_join) )))))
  | Ebinop (op, a, b) ->
    let sa = temp_slot fctx in
    compile state fctx scope env a
      (Meta
         (fun env va ->
           frame_store env sa va
             (compile state fctx scope env b
                (Meta
                   (fun env vb ->
                     frame_load env sa (fun va ->
                         compile_binop env op va vb cont))))))
  | Eapp (f, arg) ->
    let sf = temp_slot fctx in
    compile state fctx scope env f
      (Meta
         (fun env vf ->
           frame_store env sf vf
             (compile state fctx scope env arg
                (Meta
                   (fun env varg ->
                     frame_load env sf (fun vf ->
                         B.cast clo_ty vf (fun clo ->
                             B.proj clo_code_ty clo 0 (fun code ->
                                 B.proj (T.Tptr T.Tany) clo 1 (fun cenv ->
                                     match cont with
                                     | Tail ->
                                       (* pass our own return continuation
                                          through: a genuine tail call *)
                                       F.Call
                                         ( code,
                                           [ cenv; varg; env.k; env.kenv ] )
                                     | Meta metak ->
                                       let recv, build = reify state metak in
                                       build env (fun packed ->
                                           F.Call
                                             ( code,
                                               [ cenv; varg; F.Fun recv;
                                                 packed ] )))))))))))

and compile_binop env op va vb cont =
  let finish r = apply_cont cont env r in
  let int2 fop =
    B.cast T.Tint va (fun ia ->
        B.cast T.Tint vb (fun ib ->
            B.binop T.Tint fop ia ib (fun r -> box_int r finish)))
  in
  let cmp fop =
    B.cast T.Tint va (fun ia ->
        B.cast T.Tint vb (fun ib ->
            B.binop T.Tbool fop ia ib (fun r -> box r finish)))
  in
  let bool2 fop =
    B.cast T.Tbool va (fun ba ->
        B.cast T.Tbool vb (fun bb ->
            B.binop T.Tbool fop ba bb (fun r -> box r finish)))
  in
  match op with
  | "+" -> int2 F.Add
  | "-" -> int2 F.Sub
  | "*" -> int2 F.Mul
  | "/" -> int2 F.Div
  | "=" -> cmp F.Eq
  | "<>" -> cmp F.Ne
  | "<" -> cmp F.Lt
  | "<=" -> cmp F.Le
  | ">" -> cmp F.Gt
  | ">=" -> cmp F.Ge
  | "&&" -> bool2 F.And
  | "||" -> bool2 F.Or
  | op -> raise (Error ("internal: unknown operator " ^ op))

(* Compile [fun x -> body] in the current context: emit the code function
   and build the closure tuple.  For [let rec f], the closure's own value
   is patched into its environment after creation (heap environments are
   mutable, so cyclic capture is a single store). *)
and compile_lambda state _fctx scope env ~recname x body (metak : metak) :
    F.exp =
  (* the recursive name stays free: the closure captures itself and the
     knot is tied by patching its own environment after creation *)
  let frees = List.rev (free_vars [ x ] [] body) in
  let code_name = fresh_name state "f" in
  (* the code function *)
  let fd =
    B.func code_name
      [ "cenv", T.Tptr T.Tany; "arg", T.Tany; "k", cont_code_ty;
        "kenv", T.Tptr T.Tany ]
      (fun atoms ->
        match atoms with
        | [ cenv; arg; k; kenv ] ->
          let inner_size =
            List.length frees + 2 + node_count body + 4
          in
          let inner = { next_slot = 0; frame_size = inner_size } in
          B.array T.Tany ~size:(B.int inner_size) ~init:F.Unit (fun frame ->
              let env' = { k; kenv; frame } in
              let sx, iscope = bind_slot inner Scope.empty x in
              frame_store env' sx arg
                ((* unpack captured variables (the recursive name is among
                    them when recname matches a free use) *)
                 let rec unpack i iscope = function
                   | [] -> compile state inner iscope env' body Tail
                   | fv :: rest ->
                     let s, iscope = bind_slot inner iscope fv in
                     B.load T.Tany cenv (B.int i) (fun v ->
                         frame_store env' s v (unpack (i + 1) iscope rest))
                 in
                 unpack 0 iscope frees))
        | _ -> raise (Error "internal: lambda arity"))
  in
  state.fns <- fd :: state.fns;
  (* closure creation in the enclosing function *)
  let nfree = List.length frees in
  B.array T.Tany ~size:(B.int (max nfree 1)) ~init:F.Unit (fun cenv ->
      let rec capture i = function
        | [] ->
          B.tuple
            [ clo_code_ty, F.Fun code_name; T.Tptr T.Tany, cenv ]
            (fun clo ->
              box clo (fun boxed ->
                  match recname with
                  | Some f when List.mem f frees ->
                    (* tie the knot: the closure captures itself *)
                    let fi =
                      let rec index k = function
                        | [] -> raise (Error "internal: rec capture")
                        | fv :: rest ->
                          if String.equal fv f then k else index (k + 1) rest
                      in
                      index 0 frees
                    in
                    F.Store (cenv, F.Int fi, boxed, metak env boxed)
                  | Some _ | None -> metak env boxed))
        | fv :: rest ->
          if Some fv = recname then
            (* patched after creation *)
            capture (i + 1) rest
          else
            frame_load env (slot_of scope fv) (fun v ->
                F.Store (cenv, F.Int i, v, capture (i + 1) rest))
      in
      capture 0 frees)

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

let primitives = [ "print_int"; "print_newline"; "print_bool" ]

let primitive_code state prim =
  let code_name = "ml$prim_" ^ prim in
  let fd =
    B.func code_name
      [ "cenv", T.Tptr T.Tany; "arg", T.Tany; "k", cont_code_ty;
        "kenv", T.Tptr T.Tany ]
      (fun atoms ->
        match atoms with
        | [ _cenv; arg; k; kenv ] -> (
          match prim with
          | "print_int" ->
            B.cast T.Tint arg (fun n ->
                B.ext T.Tunit "print_int" [ n ] (fun _ ->
                    box F.Unit (fun u -> F.Call (k, [ kenv; u ]))))
          | "print_newline" ->
            B.ext T.Tunit "print_newline" [] (fun _ ->
                box F.Unit (fun u -> F.Call (k, [ kenv; u ])))
          | "print_bool" ->
            B.cast T.Tbool arg (fun b ->
                B.unop T.Tint F.Int_of_bool b (fun n ->
                    B.ext T.Tunit "print_int" [ n ] (fun _ ->
                        box F.Unit (fun u -> F.Call (k, [ kenv; u ])))))
          | _ -> raise (Error ("internal: unknown primitive " ^ prim)))
        | _ -> raise (Error "internal: primitive arity"))
  in
  state.fns <- fd :: state.fns;
  code_name

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

(* Fold the definition list into one expression whose value is the
   program result. *)
let program_expr (p : program) =
  let rec go = function
    | [] -> raise (Error "empty program")
    | [ Dlet (_, e) ] -> e
    | [ Dletrec (f, x, body) ] -> Eletrec (f, x, body, Evar f)
    | Dlet (x, e) :: rest -> Elet (x, e, go rest)
    | Dletrec (f, x, body) :: rest -> Eletrec (f, x, body, go rest)
  in
  go p

let lower_program ?(exit_is_int = true) (p : program) : F.program =
  let state = { fns = []; counter = 0 } in
  let expr = program_expr p in
  let top_size = List.length primitives + node_count expr + 8 in
  let fctx = { next_slot = 0; frame_size = top_size } in
  let exit_fn =
    B.func "ml$exit"
      [ "kenv", T.Tptr T.Tany; "r", T.Tany ]
      (fun atoms ->
        match atoms with
        | [ _; r ] ->
          if exit_is_int then B.cast T.Tint r (fun n -> F.Exit n)
          else F.Exit (F.Int 0)
        | _ -> raise (Error "internal: exit arity"))
  in
  let main_fn =
    B.func "main" [] (fun _ ->
        B.array T.Tany ~size:(B.int top_size) ~init:F.Unit (fun frame ->
            B.array T.Tany ~size:(B.int 1) ~init:F.Unit (fun empty_kenv ->
                let env =
                  { k = F.Fun "ml$exit"; kenv = empty_kenv; frame }
                in
                (* install primitive closures *)
                let rec install scope = function
                  | [] -> compile state fctx scope env expr Tail
                  | prim :: rest ->
                    let code = primitive_code state prim in
                    let s, scope = bind_slot fctx scope prim in
                    B.array T.Tany ~size:(B.int 1) ~init:F.Unit (fun cenv ->
                        B.tuple
                          [ clo_code_ty, F.Fun code; T.Tptr T.Tany, cenv ]
                          (fun clo ->
                            box clo (fun boxed ->
                                frame_store env s boxed (install scope rest))))
                in
                install Scope.empty primitives)))
  in
  F.program (main_fn :: exit_fn :: state.fns) ~main:"main"
