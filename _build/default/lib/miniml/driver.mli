(** The mini-ML compiler driver: source -> Hindley-Milner inference ->
    verified FIR.

    Mini-ML demonstrates the paper's multi-language claim (Section 3): a
    functional language with first-class closures and let-polymorphism
    compiling to the same FIR, running on the same runtime, and migrating
    through the same machinery as mini-C. *)

type error = {
  err_phase : [ `Parse | `Type | `Lower | `Fir ];
  err_msg : string;
}

val error_to_string : error -> string

val compile : ?optimize:bool -> string -> (Fir.Ast.program, error) result
val compile_exn : ?optimize:bool -> string -> Fir.Ast.program
