(** Hindley-Milner type inference for mini-ML (algorithm W with
    let-polymorphism).  Static safety at the source level; the lowering's
    uniform boxed representation adds runtime-checked downcasts as
    defence in depth. *)

exception Type_error of string

val check_program : Syntax.program -> unit
(** @raise Type_error on an ill-typed program (including a final
    definition that is neither [int] nor [unit]). *)
