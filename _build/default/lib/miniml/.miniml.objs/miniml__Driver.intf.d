lib/miniml/driver.mli: Fir
