lib/miniml/driver.ml: Fir Infer Lower Printf String Syntax
