lib/miniml/lower.ml: Fir List Map Printf String Syntax
