lib/miniml/infer.ml: List Printf Syntax
