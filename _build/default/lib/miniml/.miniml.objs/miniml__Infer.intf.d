lib/miniml/infer.mli: Syntax
