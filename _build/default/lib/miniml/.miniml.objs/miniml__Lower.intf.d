lib/miniml/lower.mli: Fir Syntax
