lib/miniml/syntax.ml: List Printf String
