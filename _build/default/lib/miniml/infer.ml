(* Hindley-Milner type inference for mini-ML (algorithm W with
   let-polymorphism).  Static type safety at the source level; the FIR
   produced by the lowering uses a uniform boxed representation whose
   downcasts are additionally checked at runtime, so a compiler bug
   surfaces as a trap rather than memory unsafety. *)

open Syntax

exception Type_error of string

type ty =
  | Tint
  | Tbool
  | Tunit
  | Tarrow of ty * ty
  | Tvar of tv ref

and tv = Unbound of int * int (* id, level *) | Link of ty

type scheme = { vars : int list; body : ty }

let counter = ref 0

let fresh_tv level =
  incr counter;
  Tvar (ref (Unbound (!counter, level)))

let rec repr = function
  | Tvar ({ contents = Link t } as r) ->
    let t = repr t in
    r := Link t;
    t
  | t -> t

let rec occurs id level t =
  match repr t with
  | Tvar ({ contents = Unbound (id', l') } as r) ->
    if id = id' then raise (Type_error "occurs check: recursive type");
    (* level adjustment for generalization *)
    if l' > level then r := Unbound (id', level)
  | Tarrow (a, b) ->
    occurs id level a;
    occurs id level b
  | Tint | Tbool | Tunit -> ()
  | Tvar { contents = Link _ } -> assert false

let rec unify a b =
  let a = repr a and b = repr b in
  match a, b with
  | Tint, Tint | Tbool, Tbool | Tunit, Tunit -> ()
  | Tarrow (a1, a2), Tarrow (b1, b2) ->
    unify a1 b1;
    unify a2 b2
  | Tvar ({ contents = Unbound (id, level) } as r), t
  | t, Tvar ({ contents = Unbound (id, level) } as r) ->
    (match repr t with
    | Tvar { contents = Unbound (id', _) } when id = id' -> ()
    | t ->
      occurs id level t;
      r := Link t)
  | _ ->
    let rec str t =
      match repr t with
      | Tint -> "int"
      | Tbool -> "bool"
      | Tunit -> "unit"
      | Tarrow (a, b) -> "(" ^ str a ^ " -> " ^ str b ^ ")"
      | Tvar { contents = Unbound (id, _) } -> Printf.sprintf "'a%d" id
      | Tvar { contents = Link _ } -> assert false
    in
    raise (Type_error (Printf.sprintf "cannot unify %s with %s" (str a) (str b)))

let generalize level t =
  let vars = ref [] in
  let rec go t =
    match repr t with
    | Tvar { contents = Unbound (id, l) } when l > level ->
      if not (List.mem id !vars) then vars := id :: !vars
    | Tarrow (a, b) ->
      go a;
      go b
    | Tint | Tbool | Tunit | Tvar _ -> ()
  in
  go t;
  { vars = !vars; body = t }

let instantiate level { vars; body } =
  if vars = [] then body
  else
    let map = List.map (fun id -> id, fresh_tv level) vars in
    let rec go t =
      match repr t with
      | Tvar { contents = Unbound (id, _) } -> (
        match List.assoc_opt id map with Some t -> t | None -> repr t)
      | Tarrow (a, b) -> Tarrow (go a, go b)
      | (Tint | Tbool | Tunit) as t -> t
      | Tvar { contents = Link _ } -> assert false
    in
    go body

(* primitives *)
let initial_env =
  [
    "print_int", { vars = []; body = Tarrow (Tint, Tunit) };
    "print_newline", { vars = []; body = Tarrow (Tunit, Tunit) };
    "print_bool", { vars = []; body = Tarrow (Tbool, Tunit) };
  ]

let binop_ty = function
  | "+" | "-" | "*" | "/" -> Tint, Tint, Tint
  | "=" | "<" | "<=" | ">" | ">=" | "<>" -> Tint, Tint, Tbool
  | "&&" | "||" -> Tbool, Tbool, Tbool
  | op -> raise (Type_error ("unknown operator " ^ op))

let rec infer env level = function
  | Eint _ -> Tint
  | Ebool _ -> Tbool
  | Eunit -> Tunit
  | Evar x -> (
    match List.assoc_opt x env with
    | Some sc -> instantiate level sc
    | None -> raise (Type_error ("unbound variable " ^ x)))
  | Elam (x, body) ->
    let a = fresh_tv level in
    let b = infer ((x, { vars = []; body = a }) :: env) level body in
    Tarrow (a, b)
  | Eapp (f, arg) ->
    let tf = infer env level f in
    let ta = infer env level arg in
    let tr = fresh_tv level in
    unify tf (Tarrow (ta, tr));
    tr
  | Elet (x, value, body) ->
    let tv = infer env (level + 1) value in
    let sc = generalize level tv in
    infer ((x, sc) :: env) level body
  | Eletrec (f, x, fbody, body) ->
    let a = fresh_tv (level + 1) in
    let b = fresh_tv (level + 1) in
    let tf = Tarrow (a, b) in
    let env' =
      (f, { vars = []; body = tf })
      :: (x, { vars = []; body = a })
      :: env
    in
    let tb = infer env' (level + 1) fbody in
    unify b tb;
    let sc = generalize level tf in
    infer ((f, sc) :: env) level body
  | Eif (c, t, e) ->
    unify (infer env level c) Tbool;
    let tt = infer env level t in
    unify tt (infer env level e);
    tt
  | Ebinop (op, a, b) ->
    let ta, tb, tr = binop_ty op in
    unify (infer env level a) ta;
    unify (infer env level b) tb;
    tr
  | Eseq (a, b) ->
    unify (infer env level a) Tunit;
    infer env level b

(* Typecheck a whole program; the final definition must be an int (the
   process exit value) or unit. *)
let check_program (p : program) =
  let rec go env = function
    | [] -> raise (Type_error "empty program")
    | [ last ] ->
      let t =
        match last with
        | Dlet (_, e) -> infer env 0 e
        | Dletrec (f, x, body) ->
          infer env 0 (Eletrec (f, x, body, Evar f))
      in
      (match repr t with
      | Tint | Tunit -> ()
      | _ ->
        unify t Tint (* force a useful error message *))
    | d :: rest ->
      let env =
        match d with
        | Dlet (x, e) ->
          let t = infer env 1 e in
          (x, generalize 0 t) :: env
        | Dletrec (f, x, body) ->
          let a = fresh_tv 1 and b = fresh_tv 1 in
          let tf = Tarrow (a, b) in
          let env' =
            (f, { vars = []; body = tf }) :: (x, { vars = []; body = a })
            :: env
          in
          unify b (infer env' 1 body);
          (f, generalize 0 tf) :: env
      in
      go env rest
  in
  go initial_env p
