(* Mini-ML: syntax, lexer, parser.

   A small functional language compiled to the same FIR as mini-C,
   demonstrating the paper's multi-language claim (Section 3: MCC compiles
   C, Pascal, ML and Java to one intermediate representation).  Features:
   integers, booleans, unit, first-class functions with closures,
   let / let rec (with Hindley-Milner inference), if/then/else,
   sequencing, and printing primitives. *)

exception Syntax_error of string

type expr =
  | Eint of int
  | Ebool of bool
  | Eunit
  | Evar of string
  | Elam of string * expr
  | Eapp of expr * expr
  | Elet of string * expr * expr
  | Eletrec of string * string * expr * expr (* let rec f x = e1 in e2 *)
  | Eif of expr * expr * expr
  | Ebinop of string * expr * expr
  | Eseq of expr * expr

type def =
  | Dlet of string * expr
  | Dletrec of string * string * expr (* let rec f x = body *)

type program = def list (* the last definition's body is the entry value *)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tint of int
  | Tident of string
  | Tkw of string
  | Top of string
  | Tlparen
  | Trparen
  | Teof

let keywords =
  [ "let"; "rec"; "in"; "fun"; "if"; "then"; "else"; "true"; "false" ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '\''
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* nested comments *)
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          i := !i + 2
        end
        else incr i
      done;
      if !depth > 0 then raise (Syntax_error "unterminated comment")
    end
    else if c = '(' then begin
      (* () is the unit literal *)
      if !i + 1 < n && src.[!i + 1] = ')' then begin
        toks := Tkw "()" :: !toks;
        i := !i + 2
      end
      else begin
        toks := Tlparen :: !toks;
        incr i
      end
    end
    else if c = ')' then begin
      toks := Trparen :: !toks;
      incr i
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      toks := Tint (int_of_string (String.sub src start (!i - start))) :: !toks
    end
    else if (c >= 'a' && c <= 'z') || c = '_' then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let w = String.sub src start (!i - start) in
      toks := (if List.mem w keywords then Tkw w else Tident w) :: !toks
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      if List.mem two [ "->"; "<="; ">="; "<>"; "&&"; "||" ] then begin
        toks := Top two :: !toks;
        i := !i + 2
      end
      else if String.contains "+-*/<>=;" c then begin
        toks := Top (String.make 1 c) :: !toks;
        incr i
      end
      else raise (Syntax_error (Printf.sprintf "unexpected character %C" c))
    end
  done;
  List.rev (Teof :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type pstate = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> Teof
let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let expect st t what =
  if peek st = t then advance st
  else raise (Syntax_error ("expected " ^ what))

let expect_ident st =
  match peek st with
  | Tident x ->
    advance st;
    x
  | _ -> raise (Syntax_error "expected an identifier")

(* precedence: ; < || < && < comparisons < + - < * / < application *)
let rec parse_expr st = parse_seq st

and parse_seq st =
  let lhs = parse_or st in
  if peek st = Top ";" then begin
    advance st;
    Eseq (lhs, parse_seq st)
  end
  else lhs

and parse_or st =
  let lhs = parse_and st in
  if peek st = Top "||" then begin
    advance st;
    Ebinop ("||", lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = Top "&&" then begin
    advance st;
    Ebinop ("&&", lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Top (("=" | "<" | "<=" | ">" | ">=" | "<>") as op) ->
    advance st;
    Ebinop (op, lhs, parse_add st)
  | _ -> lhs

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Top (("+" | "-") as op) ->
      advance st;
      lhs := Ebinop (op, !lhs, parse_mul st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_app st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Top (("*" | "/") as op) ->
      advance st;
      lhs := Ebinop (op, !lhs, parse_app st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_app st =
  let head = parse_atom st in
  let rec args acc =
    match peek st with
    | Tint _ | Tident _ | Tlparen | Tkw ("true" | "false" | "()") ->
      args (Eapp (acc, parse_atom st))
    | _ -> acc
  in
  args head

and parse_atom st =
  match peek st with
  | Tint n ->
    advance st;
    Eint n
  | Tkw "true" ->
    advance st;
    Ebool true
  | Tkw "false" ->
    advance st;
    Ebool false
  | Tkw "()" ->
    advance st;
    Eunit
  | Tident x ->
    advance st;
    Evar x
  | Tlparen ->
    advance st;
    let e = parse_expr st in
    expect st Trparen ")";
    e
  | Tkw "fun" ->
    advance st;
    let x = expect_ident st in
    expect st (Top "->") "->";
    Elam (x, parse_expr st)
  | Tkw "if" ->
    advance st;
    let c = parse_expr st in
    expect st (Tkw "then") "then";
    let t = parse_expr st in
    expect st (Tkw "else") "else";
    Eif (c, t, parse_expr st)
  | Tkw "let" ->
    advance st;
    if peek st = Tkw "rec" then begin
      advance st;
      let f = expect_ident st in
      let x = expect_ident st in
      expect st (Top "=") "=";
      let body = parse_expr st in
      expect st (Tkw "in") "in";
      Eletrec (f, x, body, parse_expr st)
    end
    else begin
      let x = expect_ident st in
      (* sugar: let f x y = e  ==>  let f = fun x -> fun y -> e *)
      let rec params acc =
        match peek st with
        | Tident p ->
          advance st;
          params (p :: acc)
        | _ -> List.rev acc
      in
      let ps = params [] in
      expect st (Top "=") "=";
      let body = parse_expr st in
      expect st (Tkw "in") "in";
      let value = List.fold_right (fun p acc -> Elam (p, acc)) ps body in
      Elet (x, value, parse_expr st)
    end
  | _ -> raise (Syntax_error "expected an expression")

let parse_def st =
  expect st (Tkw "let") "let";
  if peek st = Tkw "rec" then begin
    advance st;
    let f = expect_ident st in
    let x = expect_ident st in
    expect st (Top "=") "=";
    Dletrec (f, x, parse_expr st)
  end
  else begin
    let x = expect_ident st in
    let rec params acc =
      match peek st with
      | Tident p ->
        advance st;
        params (p :: acc)
      | _ -> List.rev acc
    in
    let ps = params [] in
    expect st (Top "=") "=";
    let body = parse_expr st in
    Dlet (x, List.fold_right (fun p acc -> Elam (p, acc)) ps body)
  end

let parse_program src =
  let st = { toks = tokenize src } in
  let rec defs acc =
    match peek st with
    | Teof -> List.rev acc
    | _ -> defs (parse_def st :: acc)
  in
  let p = defs [] in
  if p = [] then raise (Syntax_error "empty program");
  p
