(* Mini-ML compiler driver: source -> inferred types -> verified FIR. *)

type error = {
  err_phase : [ `Parse | `Type | `Lower | `Fir ];
  err_msg : string;
}

let error_to_string e =
  let phase =
    match e.err_phase with
    | `Parse -> "syntax error"
    | `Type -> "type error"
    | `Lower -> "lowering error"
    | `Fir -> "internal FIR error"
  in
  Printf.sprintf "%s: %s" phase e.err_msg

(* Whether the program's final value is an int (becomes the exit code) or
   unit (exit code 0); recorded during inference. *)
let final_is_int p =
  (* re-infer the final type cheaply: check_program already validated *)
  let open Syntax in
  let rec last = function
    | [] -> assert false
    | [ d ] -> d
    | _ :: rest -> last rest
  in
  match last p with
  | Dlet (_, Eunit) -> false
  | Dlet (_, Eseq (_, Eunit)) -> false
  | _ -> true

let compile ?(optimize = true) src =
  match
    let ast =
      try Syntax.parse_program src
      with Syntax.Syntax_error m -> raise (Failure ("P" ^ m))
    in
    (try Infer.check_program ast
     with Infer.Type_error m -> raise (Failure ("T" ^ m)));
    let fir =
      try Lower.lower_program ~exit_is_int:(final_is_int ast) ast
      with Lower.Error m -> raise (Failure ("W" ^ m))
    in
    (match Fir.Typecheck.check_program fir with
    | Ok () -> ()
    | Error m -> raise (Failure ("F" ^ m)));
    let fir = if optimize then Fir.Opt.optimize fir else fir in
    (match Fir.Typecheck.check_program fir with
    | Ok () -> ()
    | Error m -> raise (Failure ("F(post-opt) " ^ m)));
    fir
  with
  | fir -> Ok fir
  | exception Failure m ->
    let phase =
      match m.[0] with
      | 'P' -> `Parse
      | 'T' -> `Type
      | 'W' -> `Lower
      | _ -> `Fir
    in
    Error { err_phase = phase; err_msg = String.sub m 1 (String.length m - 1) }

let compile_exn ?optimize src =
  match compile ?optimize src with
  | Ok fir -> fir
  | Error e -> failwith (error_to_string e)
